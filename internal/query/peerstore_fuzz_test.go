package query

import (
	"bytes"
	"testing"
)

// FuzzRemoteSnapshotDecode pins the snapshot-fetch trust story: the
// bytes a peer returns are hostile until proven otherwise, and
// decodeRemoteSnapshot — the single gate every fetched or pushed
// snapshot passes — must never panic and never accept a snapshot
// whose identity or generation diverges from what was asked for.
// Allocation discipline is inherited from the snapshot wire codec
// (counts validated against bytes present before any slice is made),
// so a tiny hostile input claiming huge sections errors instead of
// ballooning memory.
func FuzzRemoteSnapshotDecode(f *testing.F) {
	key := Key{Dataset: "tiny", Measure: "kcore", Color: "degree"}
	e := NewEngine(Options{})
	e.RegisterDataset("tiny", testGraph())
	snap, err := e.Snapshot(key)
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if err := EncodeSnapshot(&valid, snap); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add([]byte("SFSN"))
	truncated := valid.Bytes()[:valid.Len()/2]
	f.Add(truncated)
	// Scribble over the middle of a valid container.
	scribbled := append([]byte(nil), valid.Bytes()...)
	for i := len(scribbled) / 2; i < len(scribbled)/2+32 && i < len(scribbled); i++ {
		scribbled[i] ^= 0xa5
	}
	f.Add(scribbled)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := decodeRemoteSnapshot(data, key, 0)
		if err != nil {
			return
		}
		if got.Key != key {
			t.Fatalf("accepted snapshot with key %v, want %v", got.Key, key)
		}
		if got.Seq != snap.Seq {
			t.Fatalf("accepted snapshot with seq %d, want %d", got.Seq, snap.Seq)
		}
	})
}
