package query

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/resilience"
)

// noRetry keeps failure-path tests fast: one forward attempt, no
// backoff sleeping.
var noRetry = resilience.RetryConfig{
	Attempts: 1,
	Sleep:    func(context.Context, time.Duration) error { return nil },
}

// scriptedTransport is a RoundTripper that either fails (connection
// refused) or serves a canned response, counting every round trip — the
// breaker tests assert on the dial count to prove an open breaker skips
// forwarding entirely.
type scriptedTransport struct {
	mu     sync.Mutex
	calls  int
	fail   bool
	status int
	body   string
}

func (tr *scriptedTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.Body != nil {
		io.Copy(io.Discard, req.Body)
		req.Body.Close()
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.calls++
	if tr.fail {
		return nil, fmt.Errorf("scripted transport: connection refused")
	}
	return &http.Response{
		StatusCode: tr.status,
		Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
		Header:  http.Header{"Content-Type": []string{"application/json"}},
		Body:    io.NopCloser(strings.NewReader(tr.body)),
		Request: req,
	}, nil
}

func (tr *scriptedTransport) count() int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.calls
}

func (tr *scriptedTransport) setFail(fail bool) {
	tr.mu.Lock()
	tr.fail = fail
	tr.mu.Unlock()
}

// testClock is an injectable breaker clock.
type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func newTestClock() *testClock { return &testClock{t: time.Unix(1700000000, 0)} }

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

const tinyBatch = `{"dataset": "tiny", "measure": "kcore", "ops": [{"op": "spectrum"}]}`

// expectLocalAnswer posts the tiny batch and requires a full,
// non-degraded local answer — what a fleet node must produce whenever
// forwarding to the owner fails.
func expectLocalAnswer(t *testing.T, ts *httptest.Server) {
	t.Helper()
	resp, out := postBatch(t, ts, tinyBatch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 from the local fallback", resp.StatusCode)
	}
	if out.Degraded != "" {
		t.Fatalf("local fallback marked degraded %q", out.Degraded)
	}
	if out.Snapshot.Dataset != "tiny" || out.Snapshot.Seq == 0 || len(out.Results) != 1 || out.Results[0].Error != "" {
		t.Fatalf("bad local fallback answer: %+v", out)
	}
}

// TestForwardMidBodyResetFallsBackLocally: the owner dies after sending
// headers and part of the body. Because the relay buffers the complete
// peer response before writing a byte, the failure is detected and the
// request is served locally instead of relaying a truncated body.
func TestForwardMidBodyResetFallsBackLocally(t *testing.T) {
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Length", "1048576")
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{"snapshot":`))
		w.(http.Flusher).Flush()
		panic(http.ErrAbortHandler) // reset the connection mid-body
	}))
	defer peer.Close()

	e := testEngine(t, Options{})
	ts := httptest.NewServer(&Handler{
		Engine: e,
		Route:  func(Key) (string, bool) { return peer.URL, true },
		Retry:  noRetry,
	})
	defer ts.Close()
	expectLocalAnswer(t, ts)
}

// TestForwardPeerHangFallsBackLocally: the owner accepts the request
// and never answers (slow-loris). The forward client's timeout bounds
// the stall and the request falls back to local service.
func TestForwardPeerHangFallsBackLocally(t *testing.T) {
	hang := make(chan struct{})
	peer := httptest.NewServer(http.HandlerFunc(func(_ http.ResponseWriter, _ *http.Request) {
		<-hang // hold the forward well past the client timeout
	}))
	defer peer.Close()
	defer close(hang) // unblock the handler (LIFO: before Close waits on it)

	e := testEngine(t, Options{})
	ts := httptest.NewServer(&Handler{
		Engine: e,
		Route:  func(Key) (string, bool) { return peer.URL, true },
		Client: &http.Client{Timeout: 100 * time.Millisecond},
		Retry:  noRetry,
	})
	defer ts.Close()

	start := time.Now()
	expectLocalAnswer(t, ts)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("fallback took %v; the 100ms client timeout did not bound the hang", elapsed)
	}
}

// TestForwardedRequestIsServedLocallyWithoutDialing: a request that
// already crossed one shard hop is always served locally — even when
// the ring says another node owns the key — so a misconfigured ring
// cannot produce a forwarding loop. Zero dials prove it.
func TestForwardedRequestIsServedLocallyWithoutDialing(t *testing.T) {
	tr := &scriptedTransport{fail: true}
	e := testEngine(t, Options{})
	ts := httptest.NewServer(&Handler{
		Engine: e,
		Route:  func(Key) (string, bool) { return "http://peer.invalid", true },
		Client: &http.Client{Transport: tr},
		Retry:  noRetry,
	})
	defer ts.Close()

	req, err := http.NewRequest(http.MethodPost, ts.URL, strings.NewReader(tinyBatch))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardedHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded request status %d, want 200 served locally", resp.StatusCode)
	}
	if n := tr.count(); n != 0 {
		t.Fatalf("forwarded request dialed the transport %d times, want 0", n)
	}
}

// TestBreakerOpensSkipsDialingAndRecovers pins the acceptance
// criterion: after Threshold consecutive forward failures the next
// request skips forwarding without a single dial, and once the cooldown
// elapses and the peer answers again, a half-open probe restores
// forwarding.
func TestBreakerOpensSkipsDialingAndRecovers(t *testing.T) {
	const canned = `{"snapshot":{"seq":7},"results":[]}`
	tr := &scriptedTransport{fail: true, status: http.StatusOK, body: canned}
	clock := newTestClock()
	breakers := resilience.NewBreakerSet(resilience.BreakerConfig{
		Threshold: 2,
		Cooldown:  time.Second,
		Jitter:    func() float64 { return 0 },
		Now:       clock.Now,
	})
	const peerURL = "http://peer.example"
	e := testEngine(t, Options{})
	ts := httptest.NewServer(&Handler{
		Engine:   e,
		Route:    func(Key) (string, bool) { return peerURL, true },
		Client:   &http.Client{Transport: tr},
		Breakers: breakers,
		Retry:    noRetry,
	})
	defer ts.Close()

	// Two failing forwards trip the breaker (threshold 2); both still
	// answer locally.
	expectLocalAnswer(t, ts)
	expectLocalAnswer(t, ts)
	if got := breakers.For(peerURL).State(); got != resilience.Open {
		t.Fatalf("breaker %v after %d failures, want open", got, 2)
	}
	dials := tr.count()

	// Open breaker: the next request must not dial at all.
	expectLocalAnswer(t, ts)
	if n := tr.count(); n != dials {
		t.Fatalf("open breaker still dialed (%d -> %d round trips)", dials, n)
	}

	// Peer recovers; after the cooldown the half-open probe forwards one
	// real request, succeeds, and closes the breaker.
	tr.setFail(false)
	clock.Advance(2 * time.Second)
	resp, err := http.Post(ts.URL, "application/json", strings.NewReader(tinyBatch))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || string(body) != canned {
		t.Fatalf("half-open probe did not relay the peer answer: %d %q", resp.StatusCode, body)
	}
	if n := tr.count(); n != dials+1 {
		t.Fatalf("half-open probe made %d dials, want 1", n-dials)
	}
	if got := breakers.For(peerURL).State(); got != resilience.Closed {
		t.Fatalf("breaker %v after successful probe, want closed", got)
	}

	// Forwarding is fully restored.
	resp, err = http.Post(ts.URL, "application/json", strings.NewReader(tinyBatch))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || tr.count() != dials+2 {
		t.Fatalf("forwarding not restored after recovery: status %d, %d dials", resp.StatusCode, tr.count())
	}
}

// TestAdmissionControlShedsMissStormWith503 pins the acceptance
// criterion: a miss storm far beyond the admission bounds never runs
// more than the bounded flights; everything beyond slots+queue is shed
// immediately with 503 and a Retry-After hint, and the admitted flights
// complete normally once the backend unblocks.
func TestAdmissionControlShedsMissStormWith503(t *testing.T) {
	release := make(chan struct{})
	e := NewEngine(Options{
		MaxConcurrentAnalyses: 2,
		MaxAnalysisQueue:      2,
		Loader: func(string) (*graph.Graph, error) {
			<-release // hold the admitted flights so the storm piles up
			return testGraph(), nil
		},
	})
	ts := httptest.NewServer(&Handler{Engine: e})
	defer ts.Close()

	const storm = 12
	const admitted = 4 // 2 slots + 2 queue
	type outcome struct {
		status     int
		retryAfter string
	}
	results := make(chan outcome, storm)
	for i := 0; i < storm; i++ {
		go func(i int) {
			// Distinct datasets: every request is its own cache miss, so
			// coalescing cannot hide the storm from the gate.
			body := fmt.Sprintf(`{"dataset": "storm%d", "measure": "kcore", "ops": [{"op": "spectrum"}]}`, i)
			resp, err := http.Post(ts.URL, "application/json", strings.NewReader(body))
			if err != nil {
				results <- outcome{status: -1}
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			results <- outcome{resp.StatusCode, resp.Header.Get("Retry-After")}
		}(i)
	}

	// While the admitted flights are held, every completed response must
	// be a shed: the gate never grows past its bounds, so exactly
	// storm-admitted requests come back 503 before the release.
	deadline := time.After(30 * time.Second)
	for shed := 0; shed < storm-admitted; shed++ {
		select {
		case r := <-results:
			if r.status != http.StatusServiceUnavailable {
				t.Fatalf("pre-release response status %d, want every one shed with 503", r.status)
			}
			if r.retryAfter == "" {
				t.Fatal("shed 503 is missing the Retry-After header")
			}
		case <-deadline:
			t.Fatal("timed out waiting for the storm to be shed")
		}
	}

	close(release)
	for i := 0; i < admitted; i++ {
		select {
		case r := <-results:
			if r.status != http.StatusOK {
				t.Fatalf("admitted flight status %d, want 200 after release", r.status)
			}
		case <-deadline:
			t.Fatal("timed out waiting for the admitted flights")
		}
	}
	if got := e.AnalysisCount(); got != admitted {
		t.Fatalf("%d analyses ran, want exactly the %d admitted", got, admitted)
	}
}

// TestAbandonedContextDetachesFromAnalysis: a caller whose context
// expires gets its error immediately, but the analysis keeps running
// detached — later requests share its result instead of re-running it.
func TestAbandonedContextDetachesFromAnalysis(t *testing.T) {
	release := make(chan struct{})
	var loads atomic.Int32
	e := NewEngine(Options{
		Loader: func(string) (*graph.Graph, error) {
			loads.Add(1)
			<-release
			return testGraph(), nil
		},
	})
	key := Key{Dataset: "slow", Measure: "kcore"}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := e.SnapshotCtx(ctx, key)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("abandoned request error %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("abandoned request took %v to return", elapsed)
	}

	// The flight is still alive: unblock it and the next (patient)
	// request gets its result without a second analysis or load.
	close(release)
	snap, err := e.Snapshot(key)
	if err != nil {
		t.Fatalf("detached flight's result unavailable: %v", err)
	}
	if snap == nil || snap.Key != key {
		t.Fatalf("bad snapshot from detached flight: %+v", snap)
	}
	if got := e.AnalysisCount(); got != 1 {
		t.Fatalf("%d analyses ran, want 1 (detached flight shared)", got)
	}
	if got := loads.Load(); got != 1 {
		t.Fatalf("loader ran %d times, want 1", got)
	}
}

// TestStaleIfErrorServesDegradedSnapshot: when the fresh path fails
// after this node has analyzed the key before, AllowStale serves the
// previous snapshot explicitly marked degraded — and client mistakes
// still fail with 400, never a stale answer.
func TestStaleIfErrorServesDegradedSnapshot(t *testing.T) {
	var fail atomic.Bool
	e := NewEngine(Options{
		Loader: func(string) (*graph.Graph, error) {
			if fail.Load() {
				return nil, fmt.Errorf("loader: backend down")
			}
			return testGraph(), nil
		},
	})
	ts := httptest.NewServer(&Handler{Engine: e, AllowStale: true})
	defer ts.Close()

	body := `{"dataset": "flaky", "measure": "kcore", "ops": [{"op": "spectrum"}]}`
	resp, out := postBatch(t, ts, body)
	if resp.StatusCode != http.StatusOK || out.Degraded != "" {
		t.Fatalf("healthy request: %d degraded=%q", resp.StatusCode, out.Degraded)
	}
	freshSeq := out.Snapshot.Seq

	// Invalidate evicts the cached snapshot and graph; with the loader
	// now failing, the fresh path cannot rebuild — but the stale side
	// cache still holds the last analysis.
	e.Invalidate("flaky")
	fail.Store(true)
	resp, out = postBatch(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stale-if-error status %d, want 200", resp.StatusCode)
	}
	if out.Degraded != DegradedStale {
		t.Fatalf("degraded marker %q, want %q", out.Degraded, DegradedStale)
	}
	if out.Snapshot.Seq != freshSeq {
		t.Fatalf("stale answer seq %d, want the previously analyzed %d", out.Snapshot.Seq, freshSeq)
	}

	// A client mistake (unknown measure) is a 400 even with stale
	// serving enabled.
	resp, _ = postBatch(t, ts, `{"dataset": "flaky", "measure": "nope", "ops": [{"op": "spectrum"}]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("client mistake status %d, want 400 (never stale)", resp.StatusCode)
	}
}
