package query

import (
	"fmt"
	"hash/fnv"
	"log"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// SnapshotStore is the pluggable storage tier beneath the Engine's
// singleflight layer: a thread-safe cache of immutable Snapshots. The
// Engine never talks to a concrete cache — it probes, inserts, and
// evicts through this interface — so swapping the in-memory LRU for
// the disk store (or a future shared cache tier) changes one Options
// field, not the engine. Coalescing stays above the store: N
// concurrent misses still run one analysis regardless of the backend.
//
// Contract: values are immutable once inserted; Get may return an
// entry to any number of callers concurrently. Add may decline to
// store (e.g. on a failed disk write) — the value is already on its
// way to the requester, so a declined insert only costs a later
// recomputation.
type SnapshotStore interface {
	Get(key Key) (*Snapshot, bool)
	Add(key Key, s *Snapshot)
	Evict(pred func(Key) bool)
	Contains(key Key) bool
	Len() int
	// Keys enumerates every cached key, in no particular order. The
	// fleet's ownership handoff walks it to find entries whose ring
	// owner changed.
	Keys() []Key
}

// NewMemorySnapshotStore returns the default in-process store: a
// mutex-guarded LRU of at most max snapshots (minimum 1).
func NewMemorySnapshotStore(max int) SnapshotStore {
	return newMemStore[Key, *Snapshot](max)
}

// DiskStore is a SnapshotStore that persists every snapshot in the
// wire format (scalarfield.SaveSnapshot) under one directory, with an
// LRU of decoded "open" entries in front so repeated hits on hot keys
// do not re-decode. Inserts encode to a temp file and rename, so a
// crash never leaves a torn snapshot behind; decode failures are
// treated as misses and the offending file is dropped. On
// construction the directory is scanned and indexed by each file's
// meta section, which is what lets a restarted process serve
// yesterday's analyses without re-running them.
type DiskStore struct {
	dir string
	// mmapGraphs switches cold-hit decodes to the mapped path: the
	// graph section of a snapshot file is mmap'd and aliased in place
	// rather than copied to the heap. Lifetimes are reference-counted
	// (see Snapshot.Release and the retain protocol in Get).
	mmapGraphs bool

	// mu guards index, open, and decoding. Encode/decode run outside
	// it, so one key's disk traffic does not serialize other keys'
	// probes. Reference bookkeeping for mapped snapshots runs UNDER it:
	// a Get retains before unlocking, and the open LRU's eviction hook
	// releases while still locked, so a snapshot can never be unmapped
	// between being found and being retained.
	mu    sync.Mutex
	index map[Key]string // key -> filename (within dir)
	open  *lru[Key, *Snapshot]
	// decoding coalesces concurrent cold hits on one key: the engine's
	// singleflight only covers the compute path, so without this, N
	// simultaneous requests for a disk-indexed key would each decode
	// the file redundantly.
	decoding map[Key]*diskDecode
}

type diskDecode struct {
	done chan struct{} // closed when snap/ok are final
	// waiters counts the Gets that joined this decode (guarded by the
	// store's mu). The leader retains the snapshot once per waiter —
	// plus once for itself — before publishing, so every joiner returns
	// an already-retained snapshot without touching the count itself.
	waiters int
	snap    *Snapshot
	ok      bool
}

// DefaultOpenSnapshots is the open-entry LRU bound used when
// NewDiskStore is given maxOpen <= 0.
const DefaultOpenSnapshots = 8

// snapExt is the snapshot file suffix.
const snapExt = ".snap"

// corruptPrefix marks quarantined snapshot files: a file that failed
// to decode is renamed corrupt-<name> instead of deleted, so an
// operator can inspect what went bad while lookups stop paying a
// doomed re-decode on every request. Quarantined files are skipped by
// the startup scan and never served.
const corruptPrefix = "corrupt-"

// DiskStoreOptions configures a DiskStore beyond its directory.
type DiskStoreOptions struct {
	// MaxOpen bounds the decoded open-entry LRU; <= 0 means
	// DefaultOpenSnapshots.
	MaxOpen int
	// MmapGraphs serves cold hits with the graph section mmap'd in
	// place instead of rebuilt on the heap: decode cost drops to a
	// header check plus a read-only verification scan, and the
	// adjacency stays backed by reclaimable file pages. The mapping is
	// released when the entry leaves the open LRU and every caller has
	// Released its snapshot.
	MmapGraphs bool
}

// NewDiskStore opens (creating if needed) a snapshot directory and
// indexes the snapshots already in it. maxOpen bounds the decoded
// open-entry LRU (<= 0 means DefaultOpenSnapshots). Files that fail to
// yield a meta section are skipped, not deleted: they may belong to a
// newer format version.
func NewDiskStore(dir string, maxOpen int) (*DiskStore, error) {
	return NewDiskStoreOptions(dir, DiskStoreOptions{MaxOpen: maxOpen})
}

// NewDiskStoreOptions is NewDiskStore with the full option set.
func NewDiskStoreOptions(dir string, opts DiskStoreOptions) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("query: creating snapshot dir: %w", err)
	}
	maxOpen := opts.MaxOpen
	if maxOpen <= 0 {
		maxOpen = DefaultOpenSnapshots
	}
	s := &DiskStore{
		dir:        dir,
		mmapGraphs: opts.MmapGraphs,
		index:      make(map[Key]string),
		open:       newLRU[Key, *Snapshot](maxOpen),
		decoding:   make(map[Key]*diskDecode),
	}
	// The open LRU owns each mapped snapshot's creation reference;
	// dropping it when the entry leaves (overflow, predicate eviction,
	// replacement) lets the mapping unmap once outstanding callers
	// Release too. Fires under s.mu.
	s.open.onEvict = func(_ Key, snap *Snapshot) { snap.Release() }
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("query: scanning snapshot dir: %w", err)
	}
	for _, entry := range entries {
		name := entry.Name()
		if entry.IsDir() {
			continue
		}
		// A tmp- file is a crash mid-Add (encode or rename never
		// finished): harmless but otherwise immortal, so reap it here.
		if strings.HasPrefix(name, "tmp-") {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		// Quarantined corrupt files are kept for inspection but never
		// indexed or served.
		if strings.HasPrefix(name, corruptPrefix) {
			continue
		}
		if !strings.HasSuffix(name, snapExt) {
			continue
		}
		key, err := readSnapshotFileKey(filepath.Join(dir, name))
		if err != nil {
			continue
		}
		s.index[key] = name
	}
	return s, nil
}

func readSnapshotFileKey(path string) (Key, error) {
	f, err := os.Open(path)
	if err != nil {
		return Key{}, err
	}
	defer f.Close()
	return DecodeSnapshotKey(f)
}

// Get probes the open-entry LRU, then the on-disk index, decoding on
// an index hit. Concurrent Gets for one key coalesce on a single
// decode. A file that no longer decodes (corruption, deletion behind
// our back) is dropped from the index and reported as a miss.
//
// Every returned snapshot is retained on the caller's behalf — the
// caller owes one Release, a no-op for heap-backed snapshots. The
// retain happens under s.mu, the same lock the open LRU's eviction
// hook releases under, so a mapped snapshot found in the cache cannot
// be unmapped before its caller's reference exists.
func (s *DiskStore) Get(key Key) (*Snapshot, bool) {
	s.mu.Lock()
	if snap, ok := s.open.get(key); ok {
		snap.Retain()
		s.mu.Unlock()
		return snap, true
	}
	name, ok := s.index[key]
	if !ok {
		s.mu.Unlock()
		return nil, false
	}
	if d, inflight := s.decoding[key]; inflight {
		// The leader retains for us (it counts waiters before
		// publishing), so the snapshot behind done is already ours.
		d.waiters++
		s.mu.Unlock()
		<-d.done
		return d.snap, d.ok
	}
	d := &diskDecode{done: make(chan struct{})}
	s.decoding[key] = d
	s.mu.Unlock()

	d.snap, d.ok = s.decodeFile(key, name)
	s.mu.Lock()
	if d.ok {
		// The decode's creation reference transfers to the open LRU;
		// then one reference per Get that is about to return this
		// snapshot: the leader itself plus every coalesced waiter.
		// Counted under the same lock waiters increment under, and
		// before done closes, so nobody returns un-retained.
		s.open.add(key, d.snap)
		for i := 0; i <= d.waiters; i++ {
			d.snap.Retain()
		}
	}
	delete(s.decoding, key)
	s.mu.Unlock()
	close(d.done)
	return d.snap, d.ok
}

// decodeFile reads and decodes one snapshot file, verifying the
// decoded identity: filenames are hashes, and a hash collision must
// read as a miss, not as the wrong analysis. A file that fails to
// decode is quarantined, not re-decoded on the next lookup; a file
// that fails to open (deleted behind our back) is simply forgotten.
func (s *DiskStore) decodeFile(key Key, name string) (*Snapshot, bool) {
	path := filepath.Join(s.dir, name)
	var snap *Snapshot
	if s.mmapGraphs {
		var err error
		snap, err = DecodeSnapshotFileMapped(path)
		if err != nil {
			if os.IsNotExist(err) {
				s.drop(key, name)
			} else {
				s.quarantine(key, name, err)
			}
			return nil, false
		}
	} else {
		f, err := os.Open(path)
		if err != nil {
			s.drop(key, name)
			return nil, false
		}
		snap, err = DecodeSnapshot(f)
		f.Close()
		if err != nil {
			s.quarantine(key, name, err)
			return nil, false
		}
	}
	if snap.Key != key {
		snap.Release()
		s.quarantine(key, name, fmt.Errorf("decoded key %v does not match %v", snap.Key, key))
		return nil, false
	}
	return snap, true
}

// drop forgets an index entry (if it still names the same file) and
// removes the file.
func (s *DiskStore) drop(key Key, name string) {
	s.mu.Lock()
	if cur, ok := s.index[key]; ok && cur == name {
		delete(s.index, key)
	}
	s.mu.Unlock()
	os.Remove(filepath.Join(s.dir, name))
}

// quarantine renames a corrupt snapshot file to corrupt-<name> and
// forgets its index entry, so the bad bytes are kept for inspection
// but never decoded again — without it, every lookup of the key would
// re-read and re-fail on the same file. The index delete is
// first-wins under the lock, so exactly one goroutine renames and
// logs per file even under concurrent lookups.
func (s *DiskStore) quarantine(key Key, name string, cause error) {
	s.mu.Lock()
	cur, ok := s.index[key]
	if ok && cur == name {
		delete(s.index, key)
	}
	s.mu.Unlock()
	if !ok || cur != name {
		return // another lookup already quarantined (or Add replaced) it
	}
	src := filepath.Join(s.dir, name)
	if err := os.Rename(src, filepath.Join(s.dir, corruptPrefix+name)); err != nil {
		// Can't even rename it: remove so it cannot wedge the key.
		os.Remove(src)
	}
	log.Printf("query: quarantined corrupt snapshot file %s (key %v): %v", name, key, cause)
}

// Add encodes the snapshot to a temp file and renames it into place.
// On an encode or write failure the snapshot is still kept in the
// open-entry LRU — persistence is best-effort, serving is not.
func (s *DiskStore) Add(key Key, snap *Snapshot) {
	name := SnapshotFileName(key)
	persisted := false
	tmp, err := os.CreateTemp(s.dir, "tmp-*")
	if err == nil {
		encErr := EncodeSnapshot(tmp, snap)
		closeErr := tmp.Close()
		if encErr == nil && closeErr == nil &&
			os.Rename(tmp.Name(), filepath.Join(s.dir, name)) == nil {
			persisted = true
		} else {
			os.Remove(tmp.Name())
		}
	}
	s.mu.Lock()
	if persisted {
		s.index[key] = name
	}
	// The LRU takes its own reference (a no-op for the heap-backed
	// snapshots analyses produce); the caller keeps theirs.
	snap.Retain()
	s.open.add(key, snap)
	s.mu.Unlock()
}

// Evict removes matching entries from the open LRU, the index, and the
// disk.
func (s *DiskStore) Evict(pred func(Key) bool) {
	var victims []string
	s.mu.Lock()
	s.open.evict(pred)
	for key, name := range s.index {
		if pred(key) {
			delete(s.index, key)
			victims = append(victims, name)
		}
	}
	s.mu.Unlock()
	for _, name := range victims {
		os.Remove(filepath.Join(s.dir, name))
	}
}

// DropOpen evicts every decoded entry from the open LRU without
// touching the index or the files on disk: resident heap copies become
// collectable and file mappings unmap once outstanding callers Release
// theirs. The next Get re-decodes from disk — the cache stays warm on
// disk, cold in memory. Use it to shed memory under pressure or to
// force the cold-hit path deterministically (benchmarks, tests).
func (s *DiskStore) DropOpen() {
	s.mu.Lock()
	s.open.evict(func(Key) bool { return true })
	s.mu.Unlock()
}

// Contains reports whether the key is indexed on disk or open in
// memory (a failed persist still serves from the open LRU).
func (s *DiskStore) Contains(key Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[key]; ok {
		return true
	}
	_, ok := s.open.items[key]
	return ok
}

// Keys enumerates every distinct cached key — indexed on disk or
// resident in the open LRU.
func (s *DiskStore) Keys() []Key {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Key, 0, len(s.index))
	for key := range s.index {
		out = append(out, key)
	}
	for key := range s.open.items {
		if _, onDisk := s.index[key]; !onDisk {
			out = append(out, key)
		}
	}
	return out
}

// Len reports the number of distinct cached keys.
func (s *DiskStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.index)
	for key := range s.open.items {
		if _, onDisk := s.index[key]; !onDisk {
			n++
		}
	}
	return n
}

// SnapshotFileName derives a DiskStore's stable filename for a key
// from its shard string. Collisions are tolerated (Get verifies the
// decoded key), so a 64-bit hash is plenty. Exported for operational
// tooling and the fault-injection harness, which corrupts specific
// entries by path.
func SnapshotFileName(key Key) string {
	h := fnv.New64a()
	h.Write([]byte(key.ShardString()))
	return fmt.Sprintf("%016x%s", h.Sum64(), snapExt)
}
