package query

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/correlation"
	"repro/internal/datasets"
	"repro/internal/graph"
)

// testGraph is a small deterministic graph: two disjoint triangles
// (each a 2-core) plus a pendant vertex 6 hanging off vertex 2 (core
// number 1), so the α=2 cut has exactly two 3-vertex components.
//
//	0-1-2 (triangle)   3-4-5 (triangle)   2-6 pendant
func testGraph() *graph.Graph {
	b := graph.NewBuilder(7)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	b.AddEdge(3, 5)
	b.AddEdge(2, 6)
	return b.Build()
}

func testEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	e := NewEngine(opts)
	e.RegisterDataset("tiny", testGraph())
	return e
}

func TestSnapshotProducesConsistentBundle(t *testing.T) {
	e := testEngine(t, Options{})
	snap, err := e.Snapshot(Key{Dataset: "tiny", Measure: "kcore", Color: "degree"})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Edge {
		t.Fatal("kcore snapshot claims edge basis")
	}
	n := snap.Graph.NumVertices()
	if len(snap.Values) != n || len(snap.ColorValues) != n {
		t.Fatalf("field lengths %d/%d for %d vertices", len(snap.Values), len(snap.ColorValues), n)
	}
	if snap.Terrain == nil || snap.Spectrum == nil {
		t.Fatal("snapshot missing terrain or spectrum")
	}
	if got := snap.Terrain.Tree.NumItems(); got != n {
		t.Fatalf("tree over %d items, want %d", got, n)
	}
	info := snap.Info()
	if info.Measure != "kcore" || info.Items != n || info.Seq != snap.Seq {
		t.Fatalf("bad info %+v", info)
	}
}

// TestConcurrentMissesCoalesce is the acceptance criterion: N
// concurrent requests for one uncached key run the analysis exactly
// once, asserted via the analysis-count hook under -race.
func TestConcurrentMissesCoalesce(t *testing.T) {
	g, err := datasets.Generate("GrQc", 0.03, 42)
	if err != nil {
		t.Fatal(err)
	}
	var hooked int64
	var hookMu sync.Mutex
	e := NewEngine(Options{OnAnalyze: func(Key) {
		hookMu.Lock()
		hooked++
		hookMu.Unlock()
	}})
	e.RegisterDataset("GrQc", g)

	const workers = 32
	key := Key{Dataset: "GrQc", Measure: "kcore"}
	snaps := make([]*Snapshot, workers)
	var wg sync.WaitGroup
	var start sync.WaitGroup
	start.Add(1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			start.Wait()
			snap, err := e.Snapshot(key)
			if err != nil {
				t.Error(err)
				return
			}
			snaps[w] = snap
		}(w)
	}
	start.Done()
	wg.Wait()

	if got := e.AnalysisCount(); got != 1 {
		t.Fatalf("%d concurrent misses ran %d analyses, want exactly 1", workers, got)
	}
	hookMu.Lock()
	defer hookMu.Unlock()
	if hooked != 1 {
		t.Fatalf("OnAnalyze fired %d times, want 1", hooked)
	}
	for w, snap := range snaps {
		if snap != snaps[0] {
			t.Fatalf("worker %d got a different snapshot (seq %d vs %d)", w, snap.Seq, snaps[0].Seq)
		}
	}
}

func TestCacheHitSkipsAnalysisAndEvictionRetriggers(t *testing.T) {
	e := testEngine(t, Options{MaxSnapshots: 2})
	keys := []Key{
		{Dataset: "tiny", Measure: "kcore"},
		{Dataset: "tiny", Measure: "degree"},
		{Dataset: "tiny", Measure: "triangles"},
	}
	for _, k := range keys {
		if _, err := e.Snapshot(k); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.AnalysisCount(); got != 3 {
		t.Fatalf("analyses after 3 distinct keys = %d", got)
	}
	// triangles and degree are cached; kcore was evicted (LRU of 2).
	if _, err := e.Snapshot(keys[2]); err != nil {
		t.Fatal(err)
	}
	if got := e.AnalysisCount(); got != 3 {
		t.Fatalf("cache hit ran an analysis (count %d)", got)
	}
	if e.Cached(keys[0]) {
		t.Fatal("kcore should have been evicted by the 2-entry LRU")
	}
	if _, err := e.Snapshot(keys[0]); err != nil {
		t.Fatal(err)
	}
	if got := e.AnalysisCount(); got != 4 {
		t.Fatalf("evicted key re-request ran %d analyses total, want 4", got)
	}
}

func TestSnapshotErrorNotCached(t *testing.T) {
	e := testEngine(t, Options{})
	key := Key{Dataset: "tiny", Measure: "no-such-measure"}
	for i := 0; i < 2; i++ {
		if _, err := e.Snapshot(key); err == nil {
			t.Fatal("unknown measure must error")
		}
	}
	if e.Cached(key) {
		t.Fatal("failed analysis must not be cached")
	}
	if _, err := e.Snapshot(Key{Dataset: "nope", Measure: "kcore"}); err == nil {
		t.Fatal("unknown dataset without loader must error")
	}
}

func TestLoaderLoadsOnDemandOnce(t *testing.T) {
	loads := 0
	e := NewEngine(Options{Loader: func(name string) (*graph.Graph, error) {
		if name != "lazy" {
			return nil, fmt.Errorf("unknown dataset %q", name)
		}
		loads++
		return testGraph(), nil
	}})
	for i := 0; i < 2; i++ {
		if _, err := e.Snapshot(Key{Dataset: "lazy", Measure: "degree"}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Snapshot(Key{Dataset: "lazy", Measure: "kcore"}); err != nil {
		t.Fatal(err)
	}
	if loads != 1 {
		t.Fatalf("loader ran %d times, want 1", loads)
	}
	if _, err := e.Snapshot(Key{Dataset: "other", Measure: "kcore"}); err == nil {
		t.Fatal("loader error must propagate")
	}
}

func TestInvalidateDropsDataset(t *testing.T) {
	e := testEngine(t, Options{})
	key := Key{Dataset: "tiny", Measure: "kcore"}
	if _, err := e.Snapshot(key); err != nil {
		t.Fatal(err)
	}
	e.Invalidate("tiny")
	if e.Cached(key) {
		t.Fatal("Invalidate left the snapshot cached")
	}
	if _, err := e.Snapshot(key); err != nil {
		t.Fatal(err)
	}
	if got := e.AnalysisCount(); got != 2 {
		t.Fatalf("analyses after invalidate = %d, want 2", got)
	}
}

func TestResolveStructuralOps(t *testing.T) {
	e := testEngine(t, Options{})
	snap, err := e.Snapshot(Key{Dataset: "tiny", Measure: "kcore"})
	if err != nil {
		t.Fatal(err)
	}
	tree := snap.Terrain.Tree

	// Both triangles are 2-cores; the bridge and the isolated vertex
	// are below α=2, so the cut has exactly two 3-vertex components.
	results := e.Resolve(snap, []Op{
		{Op: OpAlphaCut, Alpha: 2},
		{Op: OpPeaks, Alpha: 2},
		{Op: OpMCC, Item: 0},
		{Op: OpComponentOf, Item: 4, Alpha: 2},
		{Op: OpComponentOf, Item: 6, Alpha: 2},
		{Op: OpSpectrum},
	})

	cut := results[0]
	if cut.Error != "" || cut.Count != 2 {
		t.Fatalf("alpha_cut at 2: %+v", cut)
	}
	wantComps := tree.ComponentsAt(2)
	for i, c := range cut.Components {
		if c.Size != len(wantComps[i]) || !reflect.DeepEqual(c.Items, wantComps[i]) {
			t.Fatalf("component %d = %+v, want %v", i, c, wantComps[i])
		}
	}

	peaks := results[1]
	if peaks.Error != "" || peaks.Count != 2 || len(peaks.Peaks) != 2 {
		t.Fatalf("peaks at 2: %+v", peaks)
	}
	for _, p := range peaks.Peaks {
		if p.Height < 2 || p.Items != 3 {
			t.Fatalf("implausible peak %+v", p)
		}
	}

	mcc := results[2]
	if mcc.Error != "" || !reflect.DeepEqual(mcc.Items, tree.MCC(0)) || mcc.ItemCount != len(tree.MCC(0)) {
		t.Fatalf("mcc(0) = %+v, want %v", mcc, tree.MCC(0))
	}

	compOf := results[3]
	if compOf.Error != "" || compOf.ItemCount != 3 {
		t.Fatalf("component_of(4, 2) = %+v", compOf)
	}
	got := append([]int32(nil), compOf.Items...)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if !reflect.DeepEqual(got, []int32{3, 4, 5}) {
		t.Fatalf("component_of(4, 2) items %v, want [3 4 5]", got)
	}

	below := results[4]
	if below.Error != "" || below.ItemCount != 0 || len(below.Items) != 0 {
		t.Fatalf("component_of(6, 2) for a below-cut item = %+v, want empty", below)
	}

	spec := results[5]
	if spec.Error != "" || spec.Spectrum == nil || spec.Spectrum != snap.Spectrum {
		t.Fatalf("spectrum op did not return the snapshot's spectrum")
	}
}

func TestResolveCorrelationOps(t *testing.T) {
	e := testEngine(t, Options{})
	snap, err := e.Snapshot(Key{Dataset: "tiny", Measure: "kcore"})
	if err != nil {
		t.Fatal(err)
	}

	results := e.Resolve(snap, []Op{
		{Op: OpGCI, MeasureJ: "degree"}, // measure_i defaults to kcore
		{Op: OpLCI, MeasureI: "kcore", MeasureJ: "degree", Limit: 3},
	})
	gciRes, lciRes := results[0], results[1]
	if gciRes.Error != "" || gciRes.GCI == nil {
		t.Fatalf("gci: %+v", gciRes)
	}
	if math.IsNaN(*gciRes.GCI) || math.IsInf(*gciRes.GCI, 0) {
		t.Fatalf("gci = %g, want finite", *gciRes.GCI)
	}
	// Cross-check against the correlation package directly.
	vi, _, _ := e.fieldValues(snap, "kcore")
	vj, _, _ := e.fieldValues(snap, "degree")
	want, err := correlation.ParallelGCI(snap.Graph, vi, vj, correlation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if *gciRes.GCI != want {
		t.Fatalf("gci = %g, correlation package says %g", *gciRes.GCI, want)
	}

	if lciRes.Error != "" || lciRes.GCI == nil || *lciRes.GCI != want {
		t.Fatalf("lci: %+v", lciRes)
	}
	if len(lciRes.Outliers) != 3 {
		t.Fatalf("%d outliers with limit 3", len(lciRes.Outliers))
	}
	for i := 1; i < len(lciRes.Outliers); i++ {
		if lciRes.Outliers[i].LCI < lciRes.Outliers[i-1].LCI {
			t.Fatalf("outliers not sorted strongest-first: %+v", lciRes.Outliers)
		}
	}
}

func TestResolveOpErrors(t *testing.T) {
	e := testEngine(t, Options{})
	snap, err := e.Snapshot(Key{Dataset: "tiny", Measure: "kcore"})
	if err != nil {
		t.Fatal(err)
	}
	results := e.Resolve(snap, []Op{
		{Op: "nonsense"},
		{Op: OpMCC, Item: 99},
		{Op: OpMCC, Item: -1},
		{Op: OpGCI},                              // missing measure_j
		{Op: OpGCI, MeasureJ: "ktruss"},          // vertex vs edge basis
		{Op: OpGCI, MeasureJ: "no-such-measure"}, // unknown measure
		{Op: OpAlphaCut, Alpha: 2},               // still answered
	})
	for i, r := range results[:6] {
		if r.Error == "" {
			t.Fatalf("op %d should have errored: %+v", i, r)
		}
	}
	if results[6].Error != "" || results[6].Count != 2 {
		t.Fatalf("healthy op failed alongside erroring ops: %+v", results[6])
	}
}

func TestTruncationLimits(t *testing.T) {
	e := testEngine(t, Options{})
	snap, err := e.Snapshot(Key{Dataset: "tiny", Measure: "degree"})
	if err != nil {
		t.Fatal(err)
	}
	results := e.Resolve(snap, []Op{
		{Op: OpAlphaCut, Alpha: 0, Limit: 2},
		{Op: OpAlphaCut, Alpha: 0, Limit: -1},
		{Op: OpMCC, Item: 0, Limit: 1},
	})
	for _, c := range results[0].Components {
		if len(c.Items) > 2 {
			t.Fatalf("limit 2 returned %d items", len(c.Items))
		}
		if c.Size > 2 && len(c.Items) == c.Size {
			t.Fatalf("truncation did not apply: %+v", c)
		}
	}
	for _, c := range results[1].Components {
		if len(c.Items) != c.Size {
			t.Fatalf("negative limit must be unlimited: %+v", c)
		}
	}
	if r := results[2]; len(r.Items) != 1 || r.ItemCount < 1 {
		t.Fatalf("mcc limit 1: %+v", r)
	}
}

// TestDatasetsIncludesLoadedNames pins that on-demand-loaded datasets
// show up in Datasets() alongside registered ones, surviving graph
// eviction (only the name is remembered).
func TestDatasetsIncludesLoadedNames(t *testing.T) {
	e := NewEngine(Options{MaxGraphs: 1, Loader: func(name string) (*graph.Graph, error) {
		return testGraph(), nil
	}})
	e.RegisterDataset("pinned", testGraph())
	for _, name := range []string{"lazyA", "lazyB"} { // lazyB evicts lazyA's graph
		if _, err := e.Snapshot(Key{Dataset: name, Measure: "degree"}); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"lazyA", "lazyB", "pinned"}
	if got := e.Datasets(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Datasets() = %v, want %v", got, want)
	}
}

// TestPanickedComputationDoesNotWedgeTheGroup pins the singleflight
// panic path: the flight entry is cleaned up, concurrent waiters get
// an error instead of blocking forever, and the next request for the
// key runs fresh.
func TestPanickedComputationDoesNotWedgeTheGroup(t *testing.T) {
	g := newGroup[string, int](4)
	errWaiterRan := fmt.Errorf("waiter led a fresh computation")

	leaderEntered := make(chan struct{})
	release := make(chan struct{})
	waiterDone := make(chan error, 1)
	go func() {
		defer func() { recover() }()
		g.Do("k", func() (int, error) {
			close(leaderEntered)
			<-release
			panic("analysis exploded")
		})
	}()
	<-leaderEntered
	go func() {
		// Either outcome is legal — joining the panicked flight (error)
		// or arriving after cleanup and leading a fresh computation —
		// but the call must return rather than block forever.
		_, err := g.Do("k", func() (int, error) { return 0, errWaiterRan })
		waiterDone <- err
	}()
	close(release)
	if err := <-waiterDone; err == nil {
		t.Fatal("waiter must get the panicked flight's error or its own fresh result")
	}
	if g.cached("k") {
		t.Fatal("panicked computation must not be cached")
	}
	// The key is usable again.
	v, err := g.Do("k", func() (int, error) { return 42, nil })
	if err != nil || v != 42 {
		t.Fatalf("Do after panic = (%d, %v)", v, err)
	}
}
