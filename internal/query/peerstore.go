package query

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"

	"sync"

	"repro/internal/resilience"
)

// DefaultMaxFetchBytes caps a peer snapshot body (fetch response or
// handoff push) when no explicit bound is set: the same ceiling as the
// forwarding relay cap — large enough for any real snapshot, small
// enough that a corrupt or hostile peer cannot balloon memory.
const DefaultMaxFetchBytes int64 = 64 << 20

// snapshotPathPrefix is the fleet snapshot-exchange route.
const snapshotPathPrefix = "/api/v1/snapshot/"

// ErrSnapshotStale marks a snapshot received from a peer whose Seq
// does not match what the receiver's current generation demands: the
// transfer raced an invalidation, or the sender's invalidation history
// diverged. Receivers reject it — adopting would serve another
// generation's data under this one's identity.
var ErrSnapshotStale = errors.New("query: snapshot seq does not match current generation")

// errPeerSnapshotMiss marks a clean 404: the peer is healthy but does
// not hold the snapshot. Never retried.
var errPeerSnapshotMiss = errors.New("query: peer does not hold the snapshot")

// SnapshotPath returns the snapshot-exchange URL path for a key: the
// same 64-bit shard-string hash the DiskStore names files with, so the
// path a node fetches is derivable from the key alone on any fleet
// member. The serving side re-derives it from the query parameters and
// rejects mismatches, so a hash collision (or a confused client) reads
// as a 400, never as the wrong analysis.
func SnapshotPath(key Key) string {
	return snapshotPathPrefix + strings.TrimSuffix(SnapshotFileName(key), snapExt)
}

// SnapshotFetchURL renders the full snapshot-exchange URL for key
// against a peer base URL — the target of both a hydration GET and a
// handoff PUT (cmd/serve's ownership handoff pushes through it).
func SnapshotFetchURL(base string, key Key) string {
	q := url.Values{}
	q.Set("dataset", key.Dataset)
	q.Set("measure", key.Measure)
	if key.Color != "" {
		q.Set("color", key.Color)
	}
	if key.Bins != 0 {
		q.Set("bins", strconv.Itoa(key.Bins))
	}
	return base + SnapshotPath(key) + "?" + q.Encode()
}

// PeerStore is a SnapshotStore that backfills local misses from fleet
// peers: before the engine's singleflight falls through to analysis,
// a miss asks the key's ring owner (then any other live peer) for its
// encoded snapshot — the exact wire container the DiskStore persists —
// verifies it, inserts it into the inner store, and serves it. One
// owner's analysis thereby hydrates every node that is asked for the
// key, and a node that just joined the fleet serves its first owned
// queries from its predecessor's work instead of re-analyzing.
//
// Verification is the whole trust story: the response decodes through
// the same untrusted-input path as a disk file (counts validated
// before allocation, arena scan on the graph section), the decoded key
// must match the requested one, and the snapshot's Seq must equal what
// this node's current invalidation generation demands — a peer whose
// invalidation history diverged cannot smuggle stale data in. Fetches
// are breaker-gated per peer, retried with the shared retry policy,
// and size-capped; a clean 404 moves on to the next candidate.
//
// PeerStore sits between the engine's generation guard and the real
// store: Engine -> genGuardedStore -> PeerStore -> DiskStore/memory.
// All hook fields must be assigned before the store sees traffic.
type PeerStore struct {
	// Inner is the local tier beneath the peer backfill.
	Inner SnapshotStore
	// Self is this node's member ID; it is never a fetch candidate.
	Self string
	// Owner returns the ring owner of a key ("" when there is no ring
	// or no owner); it is asked first.
	Owner func(Key) string
	// Peers returns the current fetch candidates: member ID -> base
	// URL, self included or not (self is skipped either way). Nil or
	// empty disables peer backfill.
	Peers func() map[string]string
	// Generation returns a dataset's local invalidation generation;
	// nil means generation zero.
	Generation func(dataset string) uint64
	// Client performs fetches; nil means http.DefaultClient.
	Client *http.Client
	// Breakers, when set, gates fetches per peer URL: an open breaker
	// skips the candidate without dialing, and every fetch outcome
	// feeds it. Sharing cmd/serve's probe-fed set means a dead peer is
	// usually known dead before any fetch pays for the discovery.
	Breakers *resilience.BreakerSet
	// Retry tunes per-candidate fetch retries (zero value: 2 attempts,
	// 50ms jittered base backoff).
	Retry resilience.RetryConfig
	// MaxFetchBytes caps a fetched body; <= 0 means
	// DefaultMaxFetchBytes.
	MaxFetchBytes int64
	// OnFetch, when set, fires after a successful hydration with the
	// key and the peer ID that supplied it (test and metrics hook).
	OnFetch func(key Key, peer string)

	mu sync.Mutex
	// fetching coalesces concurrent misses on one key: without it,
	// every request racing ahead of the engine's singleflight (Get
	// runs on the cache-probe path, before flights coalesce) would
	// fetch redundantly.
	fetching map[Key]*peerFetch
}

type peerFetch struct {
	done chan struct{}
	snap *Snapshot
	ok   bool
}

// Get probes the inner store, then the fleet. Every returned snapshot
// is retained on the caller's behalf (peer-fetched snapshots are
// heap-backed, so their Retain/Release are no-ops).
func (p *PeerStore) Get(key Key) (*Snapshot, bool) {
	if snap, ok := p.Inner.Get(key); ok {
		return snap, true
	}
	p.mu.Lock()
	if f, inflight := p.fetching[key]; inflight {
		p.mu.Unlock()
		<-f.done
		return f.snap, f.ok
	}
	f := &peerFetch{done: make(chan struct{})}
	if p.fetching == nil {
		p.fetching = make(map[Key]*peerFetch)
	}
	p.fetching[key] = f
	p.mu.Unlock()

	f.snap, f.ok = p.fetch(key)
	p.mu.Lock()
	delete(p.fetching, key)
	p.mu.Unlock()
	close(f.done)
	return f.snap, f.ok
}

// LocalGet probes only the inner store — the serving side of the
// snapshot-exchange endpoint uses it, so answering a peer's fetch can
// never recurse into fetching.
func (p *PeerStore) LocalGet(key Key) (*Snapshot, bool) { return p.Inner.Get(key) }

// Add, Evict, Contains, Len, and Keys delegate to the inner store.
func (p *PeerStore) Add(key Key, s *Snapshot)  { p.Inner.Add(key, s) }
func (p *PeerStore) Evict(pred func(Key) bool) { p.Inner.Evict(pred) }
func (p *PeerStore) Contains(key Key) bool     { return p.Inner.Contains(key) }
func (p *PeerStore) Len() int                  { return p.Inner.Len() }
func (p *PeerStore) Keys() []Key               { return p.Inner.Keys() }

// candidates orders the peers to ask: the ring owner first (it is the
// node whose analysis duty covers the key), then every other peer in
// ID order. Deterministic order keeps fetch behavior reproducible
// under test; asking non-owners at all is what covers churn — after an
// eviction the keys' previous owner is often the only node holding
// the analysis, and it may no longer be the ring owner.
func (p *PeerStore) candidates(key Key) []string {
	var peers map[string]string
	if p.Peers != nil {
		peers = p.Peers()
	}
	if len(peers) == 0 {
		return nil
	}
	owner := ""
	if p.Owner != nil {
		owner = p.Owner(key)
	}
	ids := make([]string, 0, len(peers))
	for id := range peers {
		if id == p.Self || id == owner {
			continue
		}
		ids = append(ids, id)
	}
	sort.Strings(ids)
	if owner != "" && owner != p.Self {
		if _, ok := peers[owner]; ok {
			ids = append([]string{owner}, ids...)
		}
	}
	return ids
}

// fetch tries each candidate until one yields a verified snapshot,
// inserting it into the inner store on success.
func (p *PeerStore) fetch(key Key) (*Snapshot, bool) {
	candidates := p.candidates(key)
	if len(candidates) == 0 {
		return nil, false
	}
	peers := p.Peers()
	gen := uint64(0)
	if p.Generation != nil {
		gen = p.Generation(key.Dataset)
	}
	for _, id := range candidates {
		base, ok := peers[id]
		if !ok {
			continue
		}
		snap, err := p.fetchFrom(base, key, gen)
		if err != nil {
			if !errors.Is(err, errPeerSnapshotMiss) {
				log.Printf("query: fetching snapshot %v from peer %s: %v", key, id, err)
			}
			continue
		}
		p.Inner.Add(key, snap)
		if p.OnFetch != nil {
			p.OnFetch(key, id)
		}
		return snap, true
	}
	return nil, false
}

// fetchFrom performs the breaker-gated, retried fetch against one
// peer. A 404 returns errPeerSnapshotMiss without retrying (and feeds
// the breaker success — the peer answered, it just lacks the key);
// transport failures, bad statuses, oversized bodies, and snapshots
// that fail verification count as peer failures.
func (p *PeerStore) fetchFrom(base string, key Key, gen uint64) (*Snapshot, error) {
	var breaker *resilience.Breaker
	if p.Breakers != nil {
		breaker = p.Breakers.For(base)
	}
	fetchURL := SnapshotFetchURL(base, key)
	var snap *Snapshot
	miss := false
	err := resilience.Do(context.Background(), p.Retry, func() error {
		if breaker != nil && !breaker.Allow() {
			return fmt.Errorf("query: breaker open for %s", base)
		}
		s, notFound, err := p.fetchOnce(fetchURL, key, gen)
		if err != nil {
			if breaker != nil {
				breaker.Failure()
			}
			return err
		}
		if breaker != nil {
			breaker.Success()
		}
		snap, miss = s, notFound
		return nil
	})
	if err != nil {
		return nil, err
	}
	if miss {
		return nil, errPeerSnapshotMiss
	}
	return snap, nil
}

// fetchOnce is one GET: notFound reports a clean 404.
func (p *PeerStore) fetchOnce(fetchURL string, key Key, gen uint64) (snap *Snapshot, notFound bool, err error) {
	req, err := http.NewRequest(http.MethodGet, fetchURL, nil)
	if err != nil {
		return nil, false, err
	}
	client := p.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		return nil, true, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, false, fmt.Errorf("peer snapshot fetch: status %d", resp.StatusCode)
	}
	max := p.MaxFetchBytes
	if max <= 0 {
		max = DefaultMaxFetchBytes
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, max+1))
	if err != nil {
		return nil, false, fmt.Errorf("reading peer snapshot: %w", err)
	}
	if int64(len(data)) > max {
		return nil, false, fmt.Errorf("peer snapshot exceeds fetch cap (%d bytes)", max)
	}
	snap, err = decodeRemoteSnapshot(data, key, gen)
	if err != nil {
		return nil, false, err
	}
	return snap, false, nil
}

// decodeRemoteSnapshot decodes and verifies a snapshot received from a
// peer (fetch response or handoff push): the standard untrusted decode
// path, then identity (the decoded key must be the requested one) and
// currency (Seq must match what gen demands; ErrSnapshotStale
// otherwise). On success the snapshot is stamped with gen so the
// engine's insert guard treats it like a local analysis under that
// generation.
func decodeRemoteSnapshot(data []byte, key Key, gen uint64) (*Snapshot, error) {
	snap, err := DecodeSnapshot(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	if snap.Key != key {
		return nil, fmt.Errorf("query: peer snapshot decodes to key %v, want %v", snap.Key, key)
	}
	if want := snapshotSeq(key, gen); snap.Seq != want {
		return nil, fmt.Errorf("%w: seq %d, generation %d demands %d", ErrSnapshotStale, snap.Seq, gen, want)
	}
	snap.gen = gen
	return snap, nil
}
