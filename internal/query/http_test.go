package query

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/graph"
)

func postBatch(t *testing.T, ts *httptest.Server, body string) (*http.Response, Response) {
	t.Helper()
	resp, err := http.Post(ts.URL, "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out Response
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

// TestBatchMixedOpsFromOneSnapshot is the acceptance criterion: one
// POST answers alpha_cut + peaks + gci, all from a single snapshot.
func TestBatchMixedOpsFromOneSnapshot(t *testing.T) {
	e := testEngine(t, Options{})
	ts := httptest.NewServer(&Handler{Engine: e})
	defer ts.Close()

	resp, out := postBatch(t, ts, `{
		"dataset": "tiny", "measure": "kcore",
		"ops": [
			{"op": "alpha_cut", "alpha": 2},
			{"op": "peaks", "alpha": 2},
			{"op": "gci", "measure_j": "degree"}
		]
	}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	if out.Snapshot.Measure != "kcore" || out.Snapshot.Dataset != "tiny" || out.Snapshot.Seq == 0 {
		t.Fatalf("bad snapshot identity %+v", out.Snapshot)
	}
	if len(out.Results) != 3 {
		t.Fatalf("%d results for 3 ops", len(out.Results))
	}
	cut, peaks, gci := out.Results[0], out.Results[1], out.Results[2]
	if cut.Error != "" || cut.Count != 2 {
		t.Fatalf("alpha_cut: %+v", cut)
	}
	if peaks.Error != "" || peaks.Count != 2 {
		t.Fatalf("peaks: %+v", peaks)
	}
	if gci.Error != "" || gci.GCI == nil {
		t.Fatalf("gci: %+v", gci)
	}
	// alpha_cut and peaks describe the same cut of the same snapshot.
	for i, p := range peaks.Peaks {
		if p.Items != cut.Components[i].Size {
			t.Fatalf("peak %d has %d items but component has %d — torn snapshot?",
				i, p.Items, cut.Components[i].Size)
		}
	}
	if e.AnalysisCount() != 1 {
		t.Fatalf("one batch ran %d analyses", e.AnalysisCount())
	}
}

func TestBatchDefaultsAndOverrides(t *testing.T) {
	e := testEngine(t, Options{})
	ts := httptest.NewServer(&Handler{
		Engine:   e,
		Defaults: func() Key { return Key{Dataset: "tiny", Measure: "degree", Color: "kcore"} },
	})
	defer ts.Close()

	// Defaults fill everything the request omits.
	resp, out := postBatch(t, ts, `{"ops": [{"op": "spectrum"}]}`)
	if resp.StatusCode != http.StatusOK || out.Snapshot.Measure != "degree" || out.Snapshot.Color != "kcore" {
		t.Fatalf("defaults not applied: %d %+v", resp.StatusCode, out.Snapshot)
	}

	// A request measure overrides; explicit empty color clears the
	// default (pointer semantics).
	resp, out = postBatch(t, ts, `{"measure": "kcore", "color": "", "ops": [{"op": "spectrum"}]}`)
	if resp.StatusCode != http.StatusOK || out.Snapshot.Measure != "kcore" || out.Snapshot.Color != "" {
		t.Fatalf("overrides not applied: %d %+v", resp.StatusCode, out.Snapshot)
	}
}

func TestBatchRequestErrors(t *testing.T) {
	e := testEngine(t, Options{})
	ts := httptest.NewServer(&Handler{Engine: e})
	defer ts.Close()

	// GET is not allowed.
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d, want 405", resp.StatusCode)
	}

	for name, body := range map[string]string{
		"malformed JSON":  `{"ops": [`,
		"empty ops":       `{"dataset": "tiny", "measure": "kcore", "ops": []}`,
		"unknown dataset": `{"dataset": "nope", "measure": "kcore", "ops": [{"op": "spectrum"}]}`,
		"unknown measure": `{"dataset": "tiny", "measure": "nope", "ops": [{"op": "spectrum"}]}`,
		"oversized batch": `{"dataset": "tiny", "measure": "kcore", "ops": [` +
			strings.Repeat(`{"op": "spectrum"},`, MaxOps) + `{"op": "spectrum"}]}`,
	} {
		resp, _ := postBatch(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestBatchMeasureOverrideDropsCrossBasisDefaultColor pins the
// default-merge rule: when a request overrides only the measure, a
// defaulted color on the other basis is dropped (like the viewer's
// sticky preference), not a 400. An explicit cross-basis color is
// still the client's error.
func TestBatchMeasureOverrideDropsCrossBasisDefaultColor(t *testing.T) {
	e := testEngine(t, Options{})
	ts := httptest.NewServer(&Handler{
		Engine:   e,
		Defaults: func() Key { return Key{Dataset: "tiny", Measure: "kcore", Color: "degree"} },
	})
	defer ts.Close()

	resp, out := postBatch(t, ts, `{"measure": "ktruss", "ops": [{"op": "spectrum"}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("measure-only override with vertex default color: status %d", resp.StatusCode)
	}
	if out.Snapshot.Measure != "ktruss" || out.Snapshot.Color != "" {
		t.Fatalf("cross-basis default color not dropped: %+v", out.Snapshot)
	}

	resp, _ = postBatch(t, ts, `{"measure": "ktruss", "color": "degree", "ops": [{"op": "spectrum"}]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("explicit cross-basis color: status %d, want 400", resp.StatusCode)
	}
}

// TestServerFaultsAre500 pins the status mapping: request mistakes
// (unknown dataset/measure, basis mismatch) are 400s, but a failing
// loader — a server-side fault unless the loader says otherwise — is
// a 500.
func TestServerFaultsAre500(t *testing.T) {
	e := NewEngine(Options{Loader: func(name string) (*graph.Graph, error) {
		return nil, errors.New("disk on fire")
	}})
	ts := httptest.NewServer(&Handler{Engine: e})
	defer ts.Close()

	resp, _ := postBatch(t, ts, `{"dataset": "x", "measure": "kcore", "ops": [{"op": "spectrum"}]}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("loader fault: status %d, want 500", resp.StatusCode)
	}

	// A loader can mark the failure as the client's (bad name) instead.
	e2 := NewEngine(Options{Loader: func(name string) (*graph.Graph, error) {
		return nil, &ClientError{Err: errors.New("no such dataset")}
	}})
	ts2 := httptest.NewServer(&Handler{Engine: e2})
	defer ts2.Close()
	resp, _ = postBatch(t, ts2, `{"dataset": "x", "measure": "kcore", "ops": [{"op": "spectrum"}]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("loader ClientError: status %d, want 400", resp.StatusCode)
	}
}
