package query

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	scalarfield "repro"
)

// opsBatch exercises every operation family against one snapshot.
func opsBatch() []Op {
	return []Op{
		{Op: OpAlphaCut, Alpha: 2},
		{Op: OpPeaks, Alpha: 1},
		{Op: OpMCC, Item: 0},
		{Op: OpComponentOf, Item: 1, Alpha: 1},
		{Op: OpSpectrum},
		{Op: OpLCI, MeasureJ: "degree"},
		{Op: OpGCI, MeasureI: "kcore", MeasureJ: "triangles"},
	}
}

func resolveJSON(t *testing.T, e *Engine, snap *Snapshot) []byte {
	t.Helper()
	out, err := json.Marshal(Response{Snapshot: snap.Info(), Results: e.Resolve(snap, opsBatch())})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSnapshotCodecServesIdenticalResults: a decoded snapshot must
// answer the full operation vocabulary byte-identically to the
// original — the property the disk store and the shard fleet rely on.
func TestSnapshotCodecServesIdenticalResults(t *testing.T) {
	for _, key := range []Key{
		{Dataset: "tiny", Measure: "kcore", Color: "degree"},
		{Dataset: "tiny", Measure: "ktruss"},
		{Dataset: "tiny", Measure: "degree", Bins: 3},
	} {
		e := testEngine(t, Options{})
		snap, err := e.Snapshot(key)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := EncodeSnapshot(&buf, snap); err != nil {
			t.Fatal(err)
		}
		decoded, err := DecodeSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if decoded.Key != key || decoded.Seq != snap.Seq || decoded.Edge != snap.Edge {
			t.Fatalf("decoded identity %+v (seq %d) differs from %+v (seq %d)",
				decoded.Key, decoded.Seq, key, snap.Seq)
		}
		if !reflect.DeepEqual(decoded.Info(), snap.Info()) {
			t.Fatalf("decoded info %+v != %+v", decoded.Info(), snap.Info())
		}
		want := resolveJSON(t, e, snap)
		got := resolveJSON(t, e, decoded)
		if !bytes.Equal(want, got) {
			t.Fatalf("key %+v: decoded snapshot answers differently:\nwant %s\ngot  %s", key, want, got)
		}
	}
}

// TestDiskStorePersistsAcrossRestart is the acceptance criterion's
// restart half: a second engine over the same directory serves the
// snapshot without re-analyzing, with byte-identical query responses.
func TestDiskStorePersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	key := Key{Dataset: "tiny", Measure: "kcore", Color: "degree"}

	store1, err := NewDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	e1 := NewEngine(Options{Store: store1})
	e1.RegisterDataset("tiny", testGraph())
	snap1, err := e1.Snapshot(key)
	if err != nil {
		t.Fatal(err)
	}
	if got := e1.AnalysisCount(); got != 1 {
		t.Fatalf("first engine ran %d analyses, want 1", got)
	}
	want := resolveJSON(t, e1, snap1)

	// "Restart": fresh store over the same directory, fresh engine.
	store2, err := NewDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !store2.Contains(key) {
		t.Fatal("restarted store does not index the persisted snapshot")
	}
	e2 := NewEngine(Options{Store: store2})
	e2.RegisterDataset("tiny", testGraph())
	snap2, err := e2.Snapshot(key)
	if err != nil {
		t.Fatal(err)
	}
	if got := e2.AnalysisCount(); got != 0 {
		t.Fatalf("restarted engine re-analyzed (%d analyses), want 0 (disk hit)", got)
	}
	if snap2.Seq != snap1.Seq {
		t.Fatalf("restored snapshot seq %d != original %d", snap2.Seq, snap1.Seq)
	}
	got := resolveJSON(t, e2, snap2)
	if !bytes.Equal(want, got) {
		t.Fatalf("disk-restored snapshot answers differently:\nwant %s\ngot  %s", want, got)
	}

	// A second hit comes from the open-entry LRU: same pointer.
	snap3, err := e2.Snapshot(key)
	if err != nil {
		t.Fatal(err)
	}
	if snap3 != snap2 {
		t.Fatal("second disk-store hit did not reuse the open entry")
	}
}

// TestDiskStoreColdHitsCoalesce: concurrent Gets for a disk-indexed
// key must share one decode — every caller receives the same snapshot
// pointer, which only the coalesced path can produce.
func TestDiskStoreColdHitsCoalesce(t *testing.T) {
	dir := t.TempDir()
	store1, err := NewDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(Options{Store: store1})
	e.RegisterDataset("tiny", testGraph())
	key := Key{Dataset: "tiny", Measure: "kcore"}
	if _, err := e.Snapshot(key); err != nil {
		t.Fatal(err)
	}

	// Fresh store over the same dir: the key is indexed but cold.
	store2, err := NewDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 16
	snaps := make([]*Snapshot, workers)
	var wg sync.WaitGroup
	var start sync.WaitGroup
	start.Add(1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			start.Wait()
			snap, ok := store2.Get(key)
			if !ok {
				t.Error("cold Get missed an indexed key")
				return
			}
			snaps[w] = snap
		}(w)
	}
	start.Done()
	wg.Wait()
	for w, snap := range snaps {
		if snap != snaps[0] {
			t.Fatalf("worker %d decoded its own copy — cold hits did not coalesce", w)
		}
	}
}

// TestDiskStoreReapsTempFiles: a crash mid-Add leaves a tmp- file; the
// next startup scan must remove it.
func TestDiskStoreReapsTempFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "tmp-crashed"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDiskStore(dir, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "tmp-crashed")); !os.IsNotExist(err) {
		t.Fatal("startup scan did not reap the orphaned tmp- file")
	}
}

// TestDiskStoreEvictRemovesFiles: Invalidate through a disk store must
// remove the persisted files, so a restart cannot resurrect stale
// snapshots.
func TestDiskStoreEvictRemovesFiles(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(Options{Store: store})
	e.RegisterDataset("tiny", testGraph())
	key := Key{Dataset: "tiny", Measure: "kcore"}
	if _, err := e.Snapshot(key); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*"+snapExt))
	if len(files) != 1 {
		t.Fatalf("%d snapshot files after one analysis, want 1", len(files))
	}
	e.Invalidate("tiny")
	if store.Contains(key) || store.Len() != 0 {
		t.Fatal("store still contains the key after Invalidate")
	}
	files, _ = filepath.Glob(filepath.Join(dir, "*"+snapExt))
	if len(files) != 0 {
		t.Fatalf("%d snapshot files survived Invalidate, want 0", len(files))
	}
}

// TestDiskStoreCorruptFileIsAMiss: a torn or corrupt snapshot file
// must read as a cache miss (and be dropped), never as an error or a
// wrong answer.
func TestDiskStoreCorruptFileIsAMiss(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(Options{Store: store})
	e.RegisterDataset("tiny", testGraph())
	key := Key{Dataset: "tiny", Measure: "kcore"}
	if _, err := e.Snapshot(key); err != nil {
		t.Fatal(err)
	}

	// Truncate the file behind the store's back and drop the open
	// entry by pushing other keys through the small LRU.
	files, _ := filepath.Glob(filepath.Join(dir, "*"+snapExt))
	if len(files) != 1 {
		t.Fatalf("%d files, want 1", len(files))
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[0], data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	store.mu.Lock()
	store.open.evict(func(Key) bool { return true })
	store.mu.Unlock()

	if _, ok := store.Get(key); ok {
		t.Fatal("corrupt snapshot file served as a hit")
	}
	// The bad bytes are quarantined for inspection, not deleted — and
	// the original path is gone, so no lookup ever re-decodes them.
	if _, err := os.Stat(files[0]); !os.IsNotExist(err) {
		t.Fatal("corrupt snapshot file left at its original path")
	}
	quarantined := filepath.Join(dir, corruptPrefix+filepath.Base(files[0]))
	if _, err := os.Stat(quarantined); err != nil {
		t.Fatalf("corrupt snapshot file was not quarantined: %v", err)
	}
	// A second lookup is a plain miss: the index entry is gone, no
	// decode is attempted, the quarantined file stays put.
	if _, ok := store.Get(key); ok {
		t.Fatal("quarantined key served as a hit")
	}
	// The engine transparently re-analyzes.
	if _, err := e.Snapshot(key); err != nil {
		t.Fatal(err)
	}
	if got := e.AnalysisCount(); got != 2 {
		t.Fatalf("%d analyses after corrupt-file miss, want 2", got)
	}
	// A restarted store skips the quarantined file instead of
	// re-indexing (or deleting) it.
	store2, err := NewDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = store2
	if _, err := os.Stat(quarantined); err != nil {
		t.Fatalf("startup scan disturbed the quarantined file: %v", err)
	}
}

// blockingMeasure is registered once for the invalidation-race test:
// it parks inside the analysis until the test releases the gate, and
// reports when an analysis has entered the measure.
var (
	blockGate    = make(chan struct{})
	blockEntered = make(chan struct{}, 8)
	blockOnce    sync.Once
)

func registerBlockingMeasure() {
	blockOnce.Do(func() {
		scalarfield.RegisterMeasure("test-blocking", false,
			"test-only: blocks until the race test releases it",
			func(g *scalarfield.Graph) []float64 {
				select {
				case blockEntered <- struct{}{}:
				default:
				}
				<-blockGate
				vals := make([]float64, g.NumVertices())
				for v := range vals {
					vals[v] = float64(g.Degree(int32(v)))
				}
				return vals
			})
	})
}

// TestInvalidateRacingInFlightAnalysis is the satellite regression: an
// Invalidate that lands while an analysis is in flight must prevent
// the completing flight from re-inserting its (now stale) snapshot.
// Run under -race in CI.
func TestInvalidateRacingInFlightAnalysis(t *testing.T) {
	registerBlockingMeasure()
	e := testEngine(t, Options{})
	key := Key{Dataset: "tiny", Measure: "test-blocking"}

	type result struct {
		snap *Snapshot
		err  error
	}
	done := make(chan result, 1)
	go func() {
		snap, err := e.Snapshot(key)
		done <- result{snap, err}
	}()

	<-blockEntered       // the analysis is inside the measure now
	e.Invalidate("tiny") // race: invalidation lands mid-flight
	close(blockGate)     // let the analysis complete
	r := <-done
	if r.err != nil {
		t.Fatal(r.err)
	}
	// The flight's waiter gets its (stale) snapshot — it asked before
	// the invalidation — but the cache must NOT have kept it.
	if e.Cached(key) {
		t.Fatal("stale snapshot was re-inserted after Invalidate")
	}

	// The next request re-analyzes under the new generation and caches.
	snap2, err := e.Snapshot(key)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.AnalysisCount(); got != 2 {
		t.Fatalf("%d analyses, want 2 (stale flight + re-analysis)", got)
	}
	if snap2.Seq == r.snap.Seq {
		t.Fatal("re-analysis after Invalidate kept the stale Seq")
	}
	if !e.Cached(key) {
		t.Fatal("fresh snapshot was not cached")
	}
}
