package query

import (
	"fmt"
	"io"
	"os"

	scalarfield "repro"
	"repro/internal/contour"
	"repro/internal/mmapio"
)

// The Snapshot wire codec: thin adapters between the engine's Snapshot
// and the public snapshot wire format (scalarfield.SaveSnapshot /
// LoadSnapshot, magic "SFSN"). Everything a Snapshot holds either
// travels in the container (graph, fields, tree, identity) or is a
// deterministic function of what does (terrain layout, coloring,
// contour spectrum — rebuilt on decode), so a decoded snapshot answers
// every query operation byte-identically to the process that encoded
// it. That property is what makes snapshots safe to cache on disk
// (DiskStore) and to serve from any node of a shard fleet.

// EncodeSnapshot writes s in the snapshot wire format.
func EncodeSnapshot(w io.Writer, s *Snapshot) error {
	return scalarfield.SaveSnapshot(w, &scalarfield.SnapshotRecord{
		Dataset:     s.Key.Dataset,
		Measure:     s.Key.Measure,
		Color:       s.Key.Color,
		Bins:        s.Key.Bins,
		Seq:         s.Seq,
		Edge:        s.Edge,
		Graph:       s.Graph,
		Values:      s.Values,
		ColorValues: s.ColorValues,
		Terrain:     s.Terrain,
	})
}

// DecodeSnapshot reads a snapshot written by EncodeSnapshot,
// reconstructing the terrain and recomputing the contour spectrum from
// the decoded tree. Corrupt input errors; nothing panics.
func DecodeSnapshot(r io.Reader) (*Snapshot, error) {
	rec, err := scalarfield.LoadSnapshot(r)
	if err != nil {
		return nil, err
	}
	return snapshotFromRecord(rec), nil
}

// snapshotFromRecord bundles a decoded record into a Snapshot,
// recomputing the contour spectrum from the decoded tree.
func snapshotFromRecord(rec *scalarfield.SnapshotRecord) *Snapshot {
	return &Snapshot{
		Key: Key{
			Dataset: rec.Dataset,
			Measure: rec.Measure,
			Color:   rec.Color,
			Bins:    rec.Bins,
		},
		Seq:         rec.Seq,
		Graph:       rec.Graph,
		Edge:        rec.Edge,
		Values:      rec.Values,
		ColorValues: rec.ColorValues,
		Terrain:     rec.Terrain,
		Spectrum:    contour.NewSpectrum(rec.Terrain.Tree),
	}
}

// DecodeSnapshotFileMapped decodes a snapshot file with its graph
// section mmap'd in place (internal/mmapio) instead of copied to the
// heap: the adjacency of a cold-served graph stays backed by clean
// file pages the kernel can reclaim. The returned snapshot carries a
// reference count wired to the mapping — the caller owns the creation
// reference and must balance it with Release (for files without a
// mappable graph section, e.g. version 1 snapshots, Release is a
// no-op and the graph lives on the heap as before).
func DecodeSnapshotFileMapped(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	// The mapping outlives the descriptor (mmapio's contract), so the
	// file can close as soon as decoding ends, mapped or not.
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	var m *mmapio.Mapping
	rec, release, err := scalarfield.LoadSnapshotFile(f, st.Size(),
		func(off, length int64) ([]byte, func(), error) {
			mm, err := mmapio.MapFile(f, off, length)
			if err != nil {
				return nil, nil, err
			}
			m = mm
			return mm.Data(), func() { mm.Close() }, nil
		})
	if err != nil {
		return nil, fmt.Errorf("query: decoding snapshot file %s: %w", path, err)
	}
	snap := snapshotFromRecord(rec)
	if m != nil {
		snap.ref = newMappedSnapshotRef(release)
	}
	return snap, nil
}

// DecodeSnapshotKey reads only the identity of a stored snapshot —
// the cheap path DiskStore uses to index a directory at startup.
func DecodeSnapshotKey(r io.Reader) (Key, error) {
	rec, err := scalarfield.DecodeSnapshotMeta(r)
	if err != nil {
		return Key{}, err
	}
	return Key{Dataset: rec.Dataset, Measure: rec.Measure, Color: rec.Color, Bins: rec.Bins}, nil
}
