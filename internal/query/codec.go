package query

import (
	"io"

	scalarfield "repro"
	"repro/internal/contour"
)

// The Snapshot wire codec: thin adapters between the engine's Snapshot
// and the public snapshot wire format (scalarfield.SaveSnapshot /
// LoadSnapshot, magic "SFSN"). Everything a Snapshot holds either
// travels in the container (graph, fields, tree, identity) or is a
// deterministic function of what does (terrain layout, coloring,
// contour spectrum — rebuilt on decode), so a decoded snapshot answers
// every query operation byte-identically to the process that encoded
// it. That property is what makes snapshots safe to cache on disk
// (DiskStore) and to serve from any node of a shard fleet.

// EncodeSnapshot writes s in the snapshot wire format.
func EncodeSnapshot(w io.Writer, s *Snapshot) error {
	return scalarfield.SaveSnapshot(w, &scalarfield.SnapshotRecord{
		Dataset:     s.Key.Dataset,
		Measure:     s.Key.Measure,
		Color:       s.Key.Color,
		Bins:        s.Key.Bins,
		Seq:         s.Seq,
		Edge:        s.Edge,
		Graph:       s.Graph,
		Values:      s.Values,
		ColorValues: s.ColorValues,
		Terrain:     s.Terrain,
	})
}

// DecodeSnapshot reads a snapshot written by EncodeSnapshot,
// reconstructing the terrain and recomputing the contour spectrum from
// the decoded tree. Corrupt input errors; nothing panics.
func DecodeSnapshot(r io.Reader) (*Snapshot, error) {
	rec, err := scalarfield.LoadSnapshot(r)
	if err != nil {
		return nil, err
	}
	return &Snapshot{
		Key: Key{
			Dataset: rec.Dataset,
			Measure: rec.Measure,
			Color:   rec.Color,
			Bins:    rec.Bins,
		},
		Seq:         rec.Seq,
		Graph:       rec.Graph,
		Edge:        rec.Edge,
		Values:      rec.Values,
		ColorValues: rec.ColorValues,
		Terrain:     rec.Terrain,
		Spectrum:    contour.NewSpectrum(rec.Terrain.Tree),
	}, nil
}

// DecodeSnapshotKey reads only the identity of a stored snapshot —
// the cheap path DiskStore uses to index a directory at startup.
func DecodeSnapshotKey(r io.Reader) (Key, error) {
	rec, err := scalarfield.DecodeSnapshotMeta(r)
	if err != nil {
		return Key{}, err
	}
	return Key{Dataset: rec.Dataset, Measure: rec.Measure, Color: rec.Color, Bins: rec.Bins}, nil
}
