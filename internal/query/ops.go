package query

import (
	"fmt"
	"sort"

	"repro/internal/contour"
	"repro/internal/correlation"
)

// The batched operation vocabulary. One request carries any mix of
// these; all are resolved against a single Snapshot, so the answers
// are mutually consistent by construction.
const (
	// OpAlphaCut lists the maximal α-connected components at Alpha.
	OpAlphaCut = "alpha_cut"
	// OpPeaks lists the peakα regions at cut height Alpha, highest
	// first (Section II-E peak selection).
	OpPeaks = "peaks"
	// OpMCC returns the maximal component for Item's own scalar value
	// (Definition 2).
	OpMCC = "mcc"
	// OpComponentOf returns the maximal Alpha-component containing
	// Item (empty when Item's scalar is below Alpha).
	OpComponentOf = "component_of"
	// OpSpectrum returns the contour spectrum B0(α) curves.
	OpSpectrum = "spectrum"
	// OpLCI computes the Local Correlation Index between MeasureI and
	// MeasureJ over the snapshot's graph, returning GCI plus the
	// top-Limit outliers (most negative LCI, Section III-C).
	OpLCI = "lci"
	// OpGCI computes just the Global Correlation Index between
	// MeasureI and MeasureJ.
	OpGCI = "gci"
)

// Op is one operation of a batch. Fields are read per the operation's
// documentation; irrelevant fields are ignored.
type Op struct {
	Op    string  `json:"op"`
	Alpha float64 `json:"alpha,omitempty"`
	Item  int32   `json:"item,omitempty"`
	// MeasureI / MeasureJ name the two registered measures an lci/gci
	// operation correlates. An empty MeasureI defaults to the
	// snapshot's height measure.
	MeasureI string `json:"measure_i,omitempty"`
	MeasureJ string `json:"measure_j,omitempty"`
	// Limit caps returned item lists (alpha_cut components, mcc and
	// component_of members) or outliers (lci). 0 means the default —
	// 200 items, 10 outliers; negative means unlimited. Counts are
	// always exact regardless of truncation.
	Limit int `json:"limit,omitempty"`
}

// Component is one maximal α-connected component of an alpha_cut.
type Component struct {
	// Size is the exact member count.
	Size int `json:"size"`
	// Items holds the member item IDs, truncated to the op's Limit.
	Items []int32 `json:"items"`
}

// PeakInfo is one peak of a peaks operation.
type PeakInfo struct {
	Node   int32   `json:"node"`
	Height float64 `json:"height"`
	Items  int     `json:"items"`
}

// Outlier is one Section III-C correlation outlier: an item whose
// local correlation most opposes the global trend.
type Outlier struct {
	Item int32   `json:"item"`
	LCI  float64 `json:"lci"`
}

// OpResult is the outcome of one operation. Op always echoes the
// operation name; exactly one result group (or Error) is populated.
// A per-operation Error does not fail the batch — the other
// operations still answer from the same snapshot.
type OpResult struct {
	Op    string `json:"op"`
	Error string `json:"error,omitempty"`

	// alpha_cut
	Count      int         `json:"count,omitempty"`
	Components []Component `json:"components,omitempty"`
	// peaks
	Peaks []PeakInfo `json:"peaks,omitempty"`
	// mcc, component_of
	ItemCount int     `json:"itemCount,omitempty"`
	Items     []int32 `json:"items,omitempty"`
	// spectrum
	Spectrum *contour.Spectrum `json:"spectrum,omitempty"`
	// lci, gci
	GCI      *float64  `json:"gci,omitempty"`
	Outliers []Outlier `json:"outliers,omitempty"`
}

// Resolve answers a batch of operations against one snapshot. Every
// answer reads only the immutable snapshot (plus, for correlation
// ops, cached immutable fields), so a batch is internally consistent
// no matter what the cache does concurrently.
func (e *Engine) Resolve(snap *Snapshot, ops []Op) []OpResult {
	out := make([]OpResult, len(ops))
	for i, op := range ops {
		out[i] = e.resolveOp(snap, op)
	}
	return out
}

func (e *Engine) resolveOp(snap *Snapshot, op Op) OpResult {
	r := OpResult{Op: op.Op}
	tree := snap.Terrain.Tree
	switch op.Op {
	case OpAlphaCut:
		comps := tree.ComponentsAt(op.Alpha)
		r.Count = len(comps)
		r.Components = make([]Component, len(comps))
		for j, c := range comps {
			r.Components[j] = Component{Size: len(c), Items: truncate(c, itemLimit(op.Limit))}
		}

	case OpPeaks:
		peaks := snap.Terrain.Peaks(op.Alpha)
		r.Count = len(peaks)
		r.Peaks = make([]PeakInfo, len(peaks))
		for j, p := range peaks {
			r.Peaks[j] = PeakInfo{Node: p.Node, Height: p.Top, Items: p.Items}
		}

	case OpMCC:
		if err := checkItem(snap, op.Item); err != nil {
			r.Error = err.Error()
			break
		}
		items := tree.MCC(op.Item)
		r.ItemCount = len(items)
		r.Items = truncate(items, itemLimit(op.Limit))

	case OpComponentOf:
		if err := checkItem(snap, op.Item); err != nil {
			r.Error = err.Error()
			break
		}
		// The super node owning the item roots a maximal α-component
		// for α in (parent's scalar, own scalar]; climbing while the
		// parent still clears α finds the maximal component at op.Alpha.
		node := tree.NodeOf[op.Item]
		if tree.Scalar[node] < op.Alpha {
			break // below the cut: empty result, not an error
		}
		for p := tree.Parent[node]; p >= 0 && tree.Scalar[p] >= op.Alpha; p = tree.Parent[node] {
			node = p
		}
		items := tree.SubtreeItems(node)
		r.ItemCount = len(items)
		r.Items = truncate(items, itemLimit(op.Limit))

	case OpSpectrum:
		r.Spectrum = snap.Spectrum

	case OpLCI, OpGCI:
		lci, err := e.opLCI(snap, op)
		if err != nil {
			r.Error = err.Error()
			break
		}
		gci := 0.0
		if len(lci) > 0 {
			for _, v := range lci {
				gci += v
			}
			gci /= float64(len(lci))
		}
		r.GCI = &gci
		if op.Op == OpLCI {
			r.Outliers = topOutliers(lci, outlierLimit(op.Limit))
		}

	default:
		r.Error = fmt.Sprintf("unknown op %q", op.Op)
	}
	return r
}

// opLCI resolves the two fields of a correlation op and computes LCI
// on the shared basis.
func (e *Engine) opLCI(snap *Snapshot, op Op) ([]float64, error) {
	mi := op.MeasureI
	if mi == "" {
		mi = snap.Key.Measure
	}
	if op.MeasureJ == "" {
		return nil, fmt.Errorf("%s: measure_j is required", op.Op)
	}
	vi, ei, err := e.fieldValues(snap, mi)
	if err != nil {
		return nil, err
	}
	vj, ej, err := e.fieldValues(snap, op.MeasureJ)
	if err != nil {
		return nil, err
	}
	if ei != ej {
		return nil, fmt.Errorf("%s: measures %q and %q disagree on vertex/edge basis", op.Op, mi, op.MeasureJ)
	}
	if ei {
		return correlation.EdgeLCI(snap.Graph, vi, vj)
	}
	return correlation.ParallelLCI(snap.Graph, vi, vj, correlation.Options{})
}

func checkItem(snap *Snapshot, item int32) error {
	if n := snap.Terrain.Tree.NumItems(); item < 0 || int(item) >= n {
		return fmt.Errorf("item %d out of range [0,%d)", item, n)
	}
	return nil
}

// itemLimit maps an Op.Limit to the item-list cap: default 200,
// negative = unlimited.
func itemLimit(limit int) int {
	if limit == 0 {
		return 200
	}
	return limit
}

// outlierLimit maps an Op.Limit to the outlier cap: default 10,
// negative = unlimited.
func outlierLimit(limit int) int {
	if limit == 0 {
		return 10
	}
	return limit
}

func truncate(items []int32, limit int) []int32 {
	if limit >= 0 && len(items) > limit {
		return items[:limit]
	}
	return items
}

// topOutliers returns the items with the most negative LCI — the
// highest -LCI outlier score — strongest first.
func topOutliers(lci []float64, limit int) []Outlier {
	out := make([]Outlier, len(lci))
	for i, v := range lci {
		out[i] = Outlier{Item: int32(i), LCI: v}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].LCI != out[b].LCI {
			return out[a].LCI < out[b].LCI
		}
		return out[a].Item < out[b].Item
	})
	if limit >= 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}
