package query

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
)

// SeqHeader carries a served snapshot's Seq on fetch responses, so a
// fetching peer can log what it received even when verification
// rejects the body.
const SeqHeader = "X-Scalarfield-Seq"

// SnapshotHandler serves the fleet snapshot-exchange endpoint,
// GET/PUT /api/v1/snapshot/{hash}:
//
//   - GET returns the locally held snapshot for the key named by the
//     query parameters, encoded in the standard snapshot wire format —
//     the bytes a DiskStore would persist. It consults only local
//     state (Local must not trigger peer fetch or analysis), so a
//     fleet of mutual misses bottoms out in 404s, never a fetch storm.
//   - PUT accepts a snapshot push — the ownership-handoff path: a node
//     whose ring arc moved sends its entries to the new owner. The
//     body is size-capped, decoded through the untrusted path, and
//     adopted only if its key matches the URL and its Seq matches the
//     receiver's current generation (409 otherwise).
//
// The {hash} path element must equal the key's own shard-string hash;
// a mismatch is a 400. That makes the URL self-verifying: a confused
// sender cannot file a snapshot under the wrong identity.
type SnapshotHandler struct {
	Engine *Engine
	// Local returns the locally held snapshot for a key, retained for
	// the caller, without any peer fetch or analysis (PeerStore's
	// LocalGet). Required for GET; nil makes every GET a 404.
	Local func(Key) (*Snapshot, bool)
	// MaxBytes caps an accepted PUT body; <= 0 means
	// DefaultMaxFetchBytes.
	MaxBytes int64
	// OnPush, when set, fires after a successfully adopted push (test
	// and metrics hook).
	OnPush func(Key)
}

// snapshotKeyFromRequest parses the key from the query parameters and
// checks it against the path hash.
func snapshotKeyFromRequest(r *http.Request) (Key, error) {
	q := r.URL.Query()
	key := Key{
		Dataset: q.Get("dataset"),
		Measure: q.Get("measure"),
		Color:   q.Get("color"),
	}
	if key.Dataset == "" || key.Measure == "" {
		return Key{}, fmt.Errorf("dataset and measure are required")
	}
	if binsStr := q.Get("bins"); binsStr != "" {
		bins, err := strconv.Atoi(binsStr)
		if err != nil {
			return Key{}, fmt.Errorf("bad bins %q: %v", binsStr, err)
		}
		key.Bins = bins
	}
	wantPath := SnapshotPath(key)
	if got := r.URL.Path; got != wantPath {
		return Key{}, fmt.Errorf("path %s does not match key %v (want %s)", got, key, wantPath)
	}
	return key, nil
}

func (h *SnapshotHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !strings.HasPrefix(r.URL.Path, snapshotPathPrefix) {
		http.NotFound(w, r)
		return
	}
	key, err := snapshotKeyFromRequest(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodGet:
		h.serveGet(w, key)
	case http.MethodPut:
		h.servePut(w, r, key)
	default:
		w.Header().Set("Allow", "GET, PUT")
		http.Error(w, "GET or PUT only", http.StatusMethodNotAllowed)
	}
}

func (h *SnapshotHandler) serveGet(w http.ResponseWriter, key Key) {
	if h.Local == nil {
		http.NotFound(w, nil)
		return
	}
	snap, ok := h.Local(key)
	if !ok {
		http.Error(w, "snapshot not held locally", http.StatusNotFound)
		return
	}
	defer snap.Release()
	// Encode fully before writing: an encode failure must surface as a
	// 500, not a torn 200 body the fetcher then quarantines the peer
	// over.
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, snap); err != nil {
		log.Printf("query: encoding snapshot %v for peer fetch: %v", key, err)
		http.Error(w, "encoding snapshot failed", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.Header().Set(SeqHeader, strconv.FormatUint(snap.Seq, 10))
	if _, err := w.Write(buf.Bytes()); err != nil {
		log.Printf("query: writing snapshot %v to peer: %v", key, err)
	}
}

func (h *SnapshotHandler) servePut(w http.ResponseWriter, r *http.Request, key Key) {
	max := h.MaxBytes
	if max <= 0 {
		max = DefaultMaxFetchBytes
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, max+1))
	if err != nil {
		http.Error(w, fmt.Sprintf("reading push body: %v", err), http.StatusBadRequest)
		return
	}
	if int64(len(data)) > max {
		http.Error(w, fmt.Sprintf("push body exceeds %d bytes", max), http.StatusRequestEntityTooLarge)
		return
	}
	snap, err := decodeRemoteSnapshot(data, key, h.Engine.DatasetGeneration(key.Dataset))
	if err != nil {
		if errors.Is(err, ErrSnapshotStale) {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := h.Engine.AdoptSnapshot(snap); err != nil {
		// The only way adoption fails after decode verified the Seq is
		// an invalidation racing between the two reads — a conflict,
		// not a bad request.
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	if h.OnPush != nil {
		h.OnPush(key)
	}
	w.WriteHeader(http.StatusNoContent)
}

// InvalidationHandler serves POST /api/v1/invalidate — both halves of
// fleet-wide invalidation:
//
//   - Without a gen parameter it is the origin call (operator or
//     streaming updater): Invalidate bumps the dataset's generation,
//     which persists, evicts, and fires the engine's OnInvalidate hook
//     (cmd/serve's broadcast).
//   - With gen=N it is a propagated broadcast: AdoptGeneration raises
//     the local generation to N (no-op if already there), persists and
//     evicts, and does NOT re-broadcast — carrying the absolute
//     generation instead of re-bumping is what keeps Snapshot.Seq
//     equal fleet-wide.
//
// The response reports the dataset's resulting generation either way.
type InvalidationHandler struct {
	Engine *Engine
}

func (h *InvalidationHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	dataset := r.URL.Query().Get("dataset")
	if dataset == "" {
		http.Error(w, "dataset is required", http.StatusBadRequest)
		return
	}
	if genStr := r.URL.Query().Get("gen"); genStr != "" {
		gen, err := strconv.ParseUint(genStr, 10, 64)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad gen %q: %v", genStr, err), http.StatusBadRequest)
			return
		}
		h.Engine.AdoptGeneration(dataset, gen)
	} else {
		h.Engine.Invalidate(dataset)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"dataset":    dataset,
		"generation": h.Engine.DatasetGeneration(dataset),
	})
}
