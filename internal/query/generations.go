package query

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/wire"
)

// GenerationStore persists per-dataset invalidation generations so
// Snapshot.Seq equality survives process restarts: a restarted node
// that reloads generation G for a dataset derives the same Seq for
// every key as it did before the restart, which is what lets it serve
// its disk-cached snapshots — and trust peer-pushed ones — without
// re-analyzing. Implementations must be safe for concurrent use.
type GenerationStore interface {
	// Load returns every persisted (dataset, generation) pair.
	Load() (map[string]uint64, error)
	// Save durably records one dataset's generation. Saves are
	// monotonic per dataset: a Save with a generation at or below the
	// stored one is a no-op, so racing persists can never regress the
	// durable state.
	Save(dataset string, gen uint64) error
}

const (
	genMagic   = "SFGE"
	genVersion = 1
	// genSection carries the generation table payload.
	genSection = "gens"
	// maxGenFileBytes bounds the file a node will load: the table holds
	// one short name and one integer per dataset, so anything near the
	// cap is corruption.
	maxGenFileBytes = 1 << 20
	// maxDatasetNameBytes bounds one dataset name on decode.
	maxDatasetNameBytes = 4 << 10
)

// GenerationFile is the GenerationStore cmd/serve wires under
// -store-dir: one small wire-format file holding the whole generation
// table, rewritten atomically (temp file + rename, same directory) on
// every change — a crash between Saves leaves the previous complete
// table, never a torn one. A file that fails to decode is quarantined
// (renamed corrupt-<name>) and the table restarts empty, matching the
// DiskStore's treatment of corrupt snapshots; the cost is re-analysis,
// not refusal to start.
type GenerationFile struct {
	path string

	mu   sync.Mutex
	gens map[string]uint64
}

// NewGenerationFile opens (creating the directory for, if needed) the
// generation table at path and loads whatever it holds.
func NewGenerationFile(path string) (*GenerationFile, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("query: creating generation dir: %w", err)
	}
	g := &GenerationFile{path: path, gens: make(map[string]uint64)}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return g, nil
	}
	if err != nil {
		return nil, fmt.Errorf("query: reading generation file: %w", err)
	}
	gens, derr := decodeGenerations(data)
	if derr != nil {
		quarantined := filepath.Join(filepath.Dir(path), corruptPrefix+filepath.Base(path))
		if rerr := os.Rename(path, quarantined); rerr != nil {
			os.Remove(path)
		}
		log.Printf("query: quarantined corrupt generation file %s: %v", path, derr)
		return g, nil
	}
	g.gens = gens
	return g, nil
}

// Load implements GenerationStore from the in-memory table (the file
// was read at construction; Save keeps the two in step).
func (g *GenerationFile) Load() (map[string]uint64, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string]uint64, len(g.gens))
	for name, gen := range g.gens {
		out[name] = gen
	}
	return out, nil
}

// Save implements GenerationStore: update the table (monotonically)
// and rewrite the file atomically. The whole operation runs under the
// store's own mutex — not the engine's genMu — so a slow disk never
// blocks generation reads at analysis start, and two racing Saves
// serialize here with the monotonic guard deciding who wins.
func (g *GenerationFile) Save(dataset string, gen uint64) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if gen <= g.gens[dataset] {
		return nil
	}
	g.gens[dataset] = gen
	data := encodeGenerations(g.gens)
	dir := filepath.Dir(g.path)
	tmp, err := os.CreateTemp(dir, "tmp-gens-*")
	if err != nil {
		return fmt.Errorf("query: persisting generations: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil && cerr == nil {
		if err := os.Rename(tmp.Name(), g.path); err == nil {
			return nil
		}
	}
	os.Remove(tmp.Name())
	return fmt.Errorf("query: persisting generations: write %v, close %v", werr, cerr)
}

func encodeGenerations(gens map[string]uint64) []byte {
	p := &wire.Payload{}
	p.PutUint64(uint64(len(gens)))
	for name, gen := range gens {
		p.PutString(name)
		p.PutUint64(gen)
	}
	var buf bytes.Buffer
	w, err := wire.NewWriter(&buf, genMagic, genVersion)
	if err == nil {
		err = w.Section(genSection, p.Bytes())
	}
	if err == nil {
		err = w.Flush()
	}
	if err != nil {
		panic(fmt.Sprintf("query: encoding generations: %v", err))
	}
	return buf.Bytes()
}

func decodeGenerations(data []byte) (map[string]uint64, error) {
	if len(data) > maxGenFileBytes {
		return nil, fmt.Errorf("query: generation file is %d bytes (max %d)", len(data), maxGenFileBytes)
	}
	r, err := wire.NewReader(bytes.NewReader(data), genMagic, genVersion)
	if err != nil {
		return nil, err
	}
	for {
		tag, payload, err := r.Next()
		if err == io.EOF {
			return nil, fmt.Errorf("query: generation file has no %q section", genSection)
		}
		if err != nil {
			return nil, err
		}
		if tag != genSection {
			continue
		}
		return decodeGenerationPayload(payload)
	}
}

func decodeGenerationPayload(p *wire.Payload) (map[string]uint64, error) {
	count, err := p.Uint64()
	if err != nil {
		return nil, err
	}
	// One entry needs at least a 4-byte string header plus an 8-byte
	// generation; validating the declared count against the bytes
	// present before allocating is the wire discipline.
	if count > uint64(p.Remaining())/12 {
		return nil, fmt.Errorf("query: generation count %d exceeds remaining payload (%d bytes)", count, p.Remaining())
	}
	gens := make(map[string]uint64, count)
	for i := uint64(0); i < count; i++ {
		name, err := p.String()
		if err != nil {
			return nil, err
		}
		gen, err := p.Uint64()
		if err != nil {
			return nil, err
		}
		if len(name) > maxDatasetNameBytes {
			return nil, fmt.Errorf("query: generation entry %d name exceeds %d bytes", i, maxDatasetNameBytes)
		}
		gens[name] = gen
	}
	return gens, nil
}
