package query

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"log"
	"sort"
	"sync"
	"sync/atomic"

	scalarfield "repro"
	"repro/internal/contour"
	"repro/internal/graph"
	"repro/internal/resilience"
	"repro/internal/stream"
)

// Options configures an Engine. The zero value is usable: defaults are
// filled in by NewEngine.
type Options struct {
	// MaxSnapshots bounds the snapshot LRU; 0 means 16. Evicted
	// snapshots stay valid for readers already holding them — eviction
	// only forces the next request for that key to re-analyze. Ignored
	// when Store is set.
	MaxSnapshots int
	// Store, when set, replaces the default in-memory snapshot LRU:
	// the engine probes, inserts, and evicts snapshots through it (a
	// DiskStore persists them across restarts). Singleflight coalescing
	// and the invalidation-generation insert guard stay above the
	// store, so N concurrent misses still run one analysis and a racing
	// Invalidate still wins, whatever the backend.
	Store SnapshotStore
	// MaxFields bounds the LRU of raw measure fields computed for
	// correlation operations; 0 means 64.
	MaxFields int
	// MaxGraphs bounds the LRU of graphs loaded on demand through
	// Loader (registered datasets are never evicted); 0 means 8.
	MaxGraphs int
	// Loader, when set, loads datasets on first reference that were
	// not registered up front — e.g. generating a Table I stand-in by
	// name. Loads coalesce like analyses: concurrent requests for one
	// unloaded dataset run the loader once.
	Loader func(name string) (*graph.Graph, error)
	// OnAnalyze, when set, is invoked once per analysis that actually
	// runs (cache misses only, after coalescing). It is a test and
	// metrics hook; it runs on the leader goroutine outside all engine
	// locks except the analyzer's.
	OnAnalyze func(Key)
	// MaxConcurrentAnalyses, when > 0, is admission control: at most
	// this many analyses (graph resolution + pipeline) run at once,
	// with up to MaxAnalysisQueue more flights waiting for a slot.
	// Flights beyond both bounds fail fast with
	// resilience.ErrOverloaded — which the HTTP layer maps to 503 with
	// Retry-After — instead of growing goroutines and held graphs
	// without bound under a miss storm. 0 means unlimited (the
	// pre-admission behavior).
	MaxConcurrentAnalyses int
	// MaxAnalysisQueue bounds the admission wait queue; meaningful
	// only with MaxConcurrentAnalyses > 0. 0 means no queue: every
	// flight beyond the concurrency bound is shed.
	MaxAnalysisQueue int
	// Generations, when set, makes per-dataset invalidation generations
	// durable: NewEngine seeds the in-memory table from it, and every
	// bump (Invalidate, AdoptGeneration) persists through it. With a
	// GenerationFile under the snapshot directory, Snapshot.Seq
	// equality survives restarts — a restarted node serves its
	// disk-cached snapshots without re-analyzing, and fleet peers that
	// share the invalidation history keep agreeing on Seq.
	Generations GenerationStore
	// OnInvalidate, when set, fires after a local Invalidate finishes
	// (generation bumped, persisted, caches evicted) with the dataset
	// and its new generation. cmd/serve uses it to broadcast the
	// invalidation fleet-wide. It does NOT fire for AdoptGeneration —
	// adopted bumps are already someone else's broadcast, and
	// re-announcing them would storm.
	OnInvalidate func(dataset string, gen uint64)
}

// Engine produces and caches Snapshots. All methods are safe for
// concurrent use; the exactly-once guarantee for concurrent cache
// misses is the singleflight group's.
type Engine struct {
	loader       func(name string) (*graph.Graph, error)
	onAnalyze    func(Key)
	onInvalidate func(dataset string, gen uint64)
	// genStore persists generation bumps (nil: process-local only).
	genStore GenerationStore
	// store is the guarded snapshot store the singleflight group sits
	// on; AdoptSnapshot inserts through it so peer-pushed snapshots get
	// the same generation guard as locally analyzed ones.
	store *genGuardedStore

	// analyzerMu serializes the one pooled Analyzer. Coalescing keeps
	// contention low: per (dataset, measure, color, bins) key at most
	// one goroutine ever reaches the analyzer, so this lock only
	// queues analyses for *different* keys.
	analyzerMu sync.Mutex
	analyzer   *scalarfield.Analyzer

	regMu      sync.RWMutex
	registered map[string]*graph.Graph
	// loaded remembers the names (not graphs) of every dataset the
	// loader has successfully produced, so Datasets() can list the
	// currently-served selection even after its graph is LRU-evicted.
	loaded map[string]bool

	snaps  *group[Key, *Snapshot]
	fields *group[fieldKey, fieldEntry]
	graphs *group[string, *graph.Graph]

	// genMu guards gens. Invalidate bumps a dataset's generation under
	// it; genGuardedStore.Add brackets each store insert with
	// generation checks under it (never holding it across the insert
	// itself), so a stale snapshot can never survive an Invalidate —
	// see genGuardedStore for the case analysis.
	genMu sync.Mutex
	gens  map[string]uint64

	// gate is admission control over analyses; nil means unlimited.
	gate *resilience.Gate
	// stale is the stale-if-error side cache: the last snapshot this
	// process analyzed per key, deliberately NOT evicted by Invalidate
	// — it exists precisely to serve explicitly degraded answers when
	// the fresh path fails or sheds. See StaleSnapshot.
	stale *memStore[Key, *Snapshot]

	analyses atomic.Int64
}

// ClientError marks an error caused by the request — an unknown
// dataset or measure, a basis mismatch — rather than by the server.
// The HTTP layer maps ClientErrors to 400 and everything else (loader
// I/O faults, analysis failures) to 500. Loaders may return one to
// mark a bad dataset name as the client's mistake.
type ClientError struct{ Err error }

func (e *ClientError) Error() string { return e.Err.Error() }
func (e *ClientError) Unwrap() error { return e.Err }

func badRequest(format string, args ...any) error {
	return &ClientError{Err: fmt.Errorf(format, args...)}
}

// fieldKey identifies one raw measure field over one dataset.
type fieldKey struct {
	dataset, measure string
}

type fieldEntry struct {
	values []float64
	edge   bool
}

// NewEngine returns an Engine with the given options.
func NewEngine(opts Options) *Engine {
	maxSnaps := opts.MaxSnapshots
	if maxSnaps <= 0 {
		maxSnaps = 16
	}
	maxFields := opts.MaxFields
	if maxFields <= 0 {
		maxFields = 64
	}
	maxGraphs := opts.MaxGraphs
	if maxGraphs <= 0 {
		maxGraphs = 8
	}
	store := opts.Store
	if store == nil {
		store = NewMemorySnapshotStore(maxSnaps)
	}
	e := &Engine{
		loader:       opts.Loader,
		onAnalyze:    opts.OnAnalyze,
		onInvalidate: opts.OnInvalidate,
		genStore:     opts.Generations,
		analyzer:     scalarfield.NewAnalyzer(),
		registered:   make(map[string]*graph.Graph),
		loaded:       make(map[string]bool),
		gens:         make(map[string]uint64),
		fields:       newGroup[fieldKey, fieldEntry](maxFields),
		graphs:       newGroup[string, *graph.Graph](maxGraphs),
		stale:        newMemStore[Key, *Snapshot](maxSnaps),
	}
	if e.genStore != nil {
		if gens, err := e.genStore.Load(); err != nil {
			log.Printf("query: loading persisted generations: %v (starting at zero)", err)
		} else {
			for dataset, gen := range gens {
				e.gens[dataset] = gen
			}
		}
	}
	if opts.MaxConcurrentAnalyses > 0 {
		e.gate = resilience.NewGate(opts.MaxConcurrentAnalyses, opts.MaxAnalysisQueue)
	}
	e.store = &genGuardedStore{e: e, store: store}
	e.snaps = newGroupOver[Key, *Snapshot](e.store)
	return e
}

// genGuardedStore wraps the engine's SnapshotStore with the
// invalidation-generation insert check: a snapshot analyzed under
// generation G is inserted only while the dataset is still at G. The
// check-and-insert runs under genMu — the same lock Invalidate bumps
// under — which closes the window where a completing analysis that
// raced an Invalidate could re-insert a stale snapshot after the
// eviction ran.
type genGuardedStore struct {
	e     *Engine
	store SnapshotStore
}

// Get probes the store and verifies the hit's analysis identity
// against the dataset's current generation. The Seq check closes the
// restart crash window durable generations open: Invalidate persists
// the bumped generation before evicting, so a crash between the two
// can leave a pre-bump snapshot on disk next to a post-bump generation
// file. A restarted process would load both; the mismatch here evicts
// the stale entry and reports a miss instead of serving pre-
// invalidation data under a fresh generation.
func (g *genGuardedStore) Get(key Key) (*Snapshot, bool) {
	s, ok := g.store.Get(key)
	if !ok {
		return nil, false
	}
	if s.Seq != snapshotSeq(key, g.e.generation(key.Dataset)) {
		s.Release()
		g.store.Evict(func(k Key) bool { return k == key })
		return nil, false
	}
	return s, true
}

func (g *genGuardedStore) Evict(pred func(Key) bool) { g.store.Evict(pred) }
func (g *genGuardedStore) Contains(key Key) bool     { return g.store.Contains(key) }
func (g *genGuardedStore) Len() int                  { return g.store.Len() }
func (g *genGuardedStore) Keys() []Key               { return g.store.Keys() }

func (g *genGuardedStore) Add(key Key, s *Snapshot) {
	// The store insert itself (possibly a disk encode) runs OUTSIDE
	// genMu, so a slow disk write never blocks Invalidate or the
	// generation reads at analysis start. Correctness comes from the
	// check-insert-recheck sandwich:
	//
	//   - Invalidate bumped before the first check: no insert.
	//   - Invalidate bumped during the insert or before the recheck:
	//     the recheck sees it and self-evicts the just-added entry.
	//   - Invalidate bumped after the recheck: its own eviction runs
	//     after the bump (program order in Invalidate), hence after our
	//     insert, and removes the entry.
	//
	// Either way a stale snapshot never survives; at worst both sides
	// evict once.
	//
	// The stale-if-error side cache is fed unconditionally, BEFORE the
	// generation check: a snapshot that lost the race to an Invalidate
	// is exactly what "last known good answer" means once the fresh
	// path starts failing. It is served only explicitly marked
	// degraded — see StaleSnapshot.
	g.e.stale.Add(key, s)
	g.e.genMu.Lock()
	current := g.e.gens[key.Dataset] == s.gen
	g.e.genMu.Unlock()
	if !current {
		return
	}
	g.store.Add(key, s)
	g.e.genMu.Lock()
	stale := g.e.gens[key.Dataset] != s.gen
	g.e.genMu.Unlock()
	if stale {
		g.store.Evict(func(k Key) bool { return k == key })
	}
}

// generation returns the dataset's current invalidation generation.
func (e *Engine) generation(dataset string) uint64 {
	e.genMu.Lock()
	defer e.genMu.Unlock()
	return e.gens[dataset]
}

// snapshotSeq derives the deterministic analysis identity of (key,
// generation): an FNV-1a hash, never zero so clients can treat zero as
// "no snapshot". Determinism is what makes fleet responses and
// disk-restored snapshots indistinguishable from locally analyzed
// ones.
func snapshotSeq(key Key, gen uint64) uint64 {
	h := fnv.New64a()
	io.WriteString(h, key.ShardString())
	var genBytes [8]byte
	for i := range genBytes {
		genBytes[i] = byte(gen >> (8 * i))
	}
	h.Write(genBytes[:])
	seq := h.Sum64()
	if seq == 0 {
		seq = 1
	}
	return seq
}

// RegisterDataset makes a graph queryable under the given name,
// pinned: registered datasets are never evicted. Registering is meant
// for startup; re-registering a name with a different graph replaces
// it for future analyses but does not invalidate snapshots already
// cached — call Invalidate for that.
func (e *Engine) RegisterDataset(name string, g *graph.Graph) {
	e.regMu.Lock()
	e.registered[name] = g
	e.regMu.Unlock()
}

// Datasets returns every known dataset name, sorted: the registered
// ones plus any the loader has successfully produced on demand.
func (e *Engine) Datasets() []string {
	e.regMu.RLock()
	names := make([]string, 0, len(e.registered)+len(e.loaded))
	for name := range e.registered {
		names = append(names, name)
	}
	for name := range e.loaded {
		if _, dup := e.registered[name]; !dup {
			names = append(names, name)
		}
	}
	e.regMu.RUnlock()
	sort.Strings(names)
	return names
}

// Graph resolves a dataset name: registered graphs first, then the
// on-demand loader (coalesced and LRU-cached).
func (e *Engine) Graph(dataset string) (*graph.Graph, error) {
	e.regMu.RLock()
	g, ok := e.registered[dataset]
	e.regMu.RUnlock()
	if ok {
		return g, nil
	}
	if e.loader == nil {
		return nil, badRequest("query: unknown dataset %q (registered: %v)", dataset, e.Datasets())
	}
	return e.graphs.Do(dataset, func() (*graph.Graph, error) {
		g, err := e.loader(dataset)
		if err != nil {
			return nil, fmt.Errorf("query: loading dataset %q: %w", dataset, err)
		}
		e.regMu.Lock()
		e.loaded[dataset] = true
		e.regMu.Unlock()
		return g, nil
	})
}

// Snapshot returns the immutable analysis for key, producing it at
// most once no matter how many goroutines ask concurrently: the first
// requester runs the pooled analysis, everyone else waits for and
// shares its result. Errors are returned to every waiter and not
// cached.
func (e *Engine) Snapshot(key Key) (*Snapshot, error) {
	return e.snaps.Do(key, func() (*Snapshot, error) { return e.analyze(key) })
}

// SnapshotCtx is Snapshot with a bounded wait: when ctx ends first,
// the caller gets ctx's error immediately while the analysis itself
// keeps running detached — coalesced waiters that are still alive get
// its result, and the snapshot lands in the cache for the next
// request. An abandoned HTTP request therefore never pins (or kills)
// an analysis goroutine; analysis concurrency is bounded by the
// admission gate, not by request lifetimes.
func (e *Engine) SnapshotCtx(ctx context.Context, key Key) (*Snapshot, error) {
	return e.snaps.DoCtx(ctx, key, func() (*Snapshot, error) { return e.analyze(key) })
}

// StaleSnapshot returns the last snapshot this process analyzed for
// key, if any — including one produced before an Invalidate. It is
// the stale-if-error fallback: when the fresh path fails (analysis
// error, admission shed), the HTTP layer serves this answer with an
// explicit `degraded: stale` marker rather than an opaque error.
// Never serve it unmarked: unlike a cache hit it may predate the
// dataset's current generation.
func (e *Engine) StaleSnapshot(key Key) (*Snapshot, bool) {
	return e.stale.Get(key)
}

// Cached reports whether key currently has a cached snapshot.
func (e *Engine) Cached(key Key) bool { return e.snaps.cached(key) }

// AnalysisCount reports how many analyses have actually run — cache
// misses after coalescing. The concurrency tests assert on it.
func (e *Engine) AnalysisCount() int64 { return e.analyses.Load() }

// Invalidate drops every cached snapshot and field of the named
// dataset, and the dataset's on-demand-loaded graph. Readers holding
// old snapshots are unaffected; the next request re-analyzes. This is
// the hook a streaming updater (internal/stream) calls after mutating
// a dataset.
//
// Invalidate also wins against analyses still in flight: the dataset's
// generation is bumped before the eviction, and the insert guard
// declines any snapshot analyzed under an older generation, so a
// completing flight cannot re-insert a stale snapshot after its key
// was evicted. (The flight's own waiters still receive the stale
// result — they asked before the invalidation, same as a reader
// already holding the old snapshot.)
func (e *Engine) Invalidate(dataset string) {
	e.genMu.Lock()
	e.gens[dataset]++
	gen := e.gens[dataset]
	e.genMu.Unlock()
	// Persist before evicting: if the process dies between the two, a
	// restart loads the new generation and the Seq check in
	// genGuardedStore.Get treats the un-evicted stale snapshots as
	// misses. The reverse order would resurrect pre-invalidation data.
	// The persist runs outside genMu (GenerationStore.Save is
	// internally monotonic), so a slow disk never blocks the generation
	// reads at analysis start.
	if e.genStore != nil {
		if err := e.genStore.Save(dataset, gen); err != nil {
			log.Printf("query: %v", err)
		}
	}
	e.snaps.evict(func(k Key) bool { return k.Dataset == dataset })
	e.fields.evict(func(k fieldKey) bool { return k.dataset == dataset })
	e.graphs.evict(func(name string) bool { return name == dataset })
	if e.onInvalidate != nil {
		e.onInvalidate(dataset, gen)
	}
}

// AdoptGeneration applies an invalidation learned from a peer: raise
// the dataset's generation to gen (never lower it — stale broadcasts
// and redeliveries are no-ops), persist, and evict like a local
// Invalidate. Unlike Invalidate it carries the peer's absolute
// generation rather than bumping, so every node that has adopted the
// same broadcast derives the same Snapshot.Seq — which is what keeps
// peer snapshot fetches verifiable fleet-wide. Returns whether the
// generation changed. OnInvalidate does not fire: adopted bumps are
// already someone's broadcast.
func (e *Engine) AdoptGeneration(dataset string, gen uint64) bool {
	e.genMu.Lock()
	if gen <= e.gens[dataset] {
		e.genMu.Unlock()
		return false
	}
	e.gens[dataset] = gen
	e.genMu.Unlock()
	if e.genStore != nil {
		if err := e.genStore.Save(dataset, gen); err != nil {
			log.Printf("query: %v", err)
		}
	}
	e.snaps.evict(func(k Key) bool { return k.Dataset == dataset })
	e.fields.evict(func(k fieldKey) bool { return k.dataset == dataset })
	e.graphs.evict(func(name string) bool { return name == dataset })
	return true
}

// DatasetGeneration reports the dataset's current invalidation
// generation — the number a fleet broadcast carries and a peer fetch
// verifies against.
func (e *Engine) DatasetGeneration(dataset string) uint64 {
	return e.generation(dataset)
}

// ExpectedSeq reports the analysis identity a snapshot of key must
// carry to be current: snapshotSeq over the key and the dataset's
// generation. Peer snapshot exchange verifies received snapshots
// against it before adopting them.
func (e *Engine) ExpectedSeq(key Key) uint64 {
	return snapshotSeq(key, e.generation(key.Dataset))
}

// AdoptSnapshot inserts a snapshot this process did not analyze — one
// pushed by a peer handing off ownership — through the same
// generation guard as local analyses. The snapshot must carry the Seq
// the key's current generation demands; a mismatch (the push raced an
// invalidation, or the sender's history diverged) is rejected, since
// adopting it would serve another generation's data under this one's
// identity.
func (e *Engine) AdoptSnapshot(snap *Snapshot) error {
	gen := e.generation(snap.Key.Dataset)
	if want := snapshotSeq(snap.Key, gen); snap.Seq != want {
		return fmt.Errorf("query: adopting snapshot for %v: seq %d does not match generation %d (want %d)",
			snap.Key, snap.Seq, gen, want)
	}
	snap.gen = gen
	e.store.Add(snap.Key, snap)
	return nil
}

// WatchStream wires a streaming monitor to the engine's invalidation:
// every state-changing update the monitor accepts (vertex added, new
// edge recorded, scalar raised — redelivered no-op duplicates do not
// fire) evicts the named dataset's snapshots, fields, and
// on-demand-loaded graph, so the next query re-analyzes instead of
// serving a cached analysis forever. Eviction is cheap (marking, no
// analysis runs until someone asks), so a rapid update burst costs one
// re-analysis at the next query, not one per update. Readers already
// holding snapshots keep them — immutability makes the handoff safe
// without coordination.
//
// What the re-analysis sees is the caller's responsibility: the
// Monitor tracks α-components, it does not mutate the engine's graph.
// For loader-backed datasets the evicted graph is re-fetched from the
// loader, which picks up whatever the loader now returns; for
// registered (pinned) graphs, re-register the rebuilt graph via
// RegisterDataset alongside the stream updates — eviction then
// guarantees the next query analyzes the new registration instead of
// a cached snapshot of the old one.
func (e *Engine) WatchStream(dataset string, m *stream.Monitor) {
	m.OnUpdate(func() { e.Invalidate(dataset) })
}

// ValidateKey checks the request-shaped parts of a key — measure and
// color must be registered and share a basis — returning a ClientError
// on violation. Snapshot runs it before analyzing, so key mistakes
// surface as 400s while genuine pipeline failures stay 500s.
func ValidateKey(key Key) error {
	info, ok := scalarfield.LookupMeasure(key.Measure)
	if !ok {
		return badRequest("query: unknown measure %q", key.Measure)
	}
	if key.Color != "" {
		cInfo, ok := scalarfield.LookupMeasure(key.Color)
		if !ok {
			return badRequest("query: unknown color measure %q", key.Color)
		}
		if cInfo.Edge != info.Edge {
			return badRequest("query: color measure %q and height measure %q disagree on vertex/edge basis",
				key.Color, key.Measure)
		}
	}
	return nil
}

// analyze is the cache-miss path: resolve the graph, run the pooled
// pipeline, bundle the products into an immutable Snapshot.
func (e *Engine) analyze(key Key) (*Snapshot, error) {
	if err := ValidateKey(key); err != nil {
		return nil, err
	}
	// Admission control: claim an analysis slot (or a bounded queue
	// position) before touching the graph — the expensive part of a
	// flight is everything from graph resolution on. A shed flight
	// fails all its coalesced waiters with ErrOverloaded; the error is
	// not cached, so the next request retries. The wait itself is
	// deliberately not bound by any requester's context: the flight is
	// detached and its result benefits future requests.
	if e.gate != nil {
		release, err := e.gate.Acquire(context.Background())
		if err != nil {
			return nil, fmt.Errorf("query: analysis of %v shed: %w", key, err)
		}
		defer release()
	}
	// The generation is captured before the graph resolves: an
	// Invalidate that lands anywhere after this point makes the
	// resulting snapshot stale, and the insert guard will decline it.
	gen := e.generation(key.Dataset)
	g, err := e.Graph(key.Dataset)
	if err != nil {
		return nil, err
	}
	// Closure so the analyzer lock releases on panic too: net/http
	// recovers handler panics, and a stuck analyzerMu would block
	// every future cache miss forever.
	res, err := func() (*scalarfield.Analysis, error) {
		e.analyzerMu.Lock()
		defer e.analyzerMu.Unlock()
		return e.analyzer.AnalyzeAll(g, key.Measure, scalarfield.AnalyzeOptions{
			SimplifyBins: key.Bins,
			ColorBy:      key.Color,
			Parallel:     true,
		})
	}()
	if err != nil {
		return nil, err
	}
	e.analyses.Add(1)
	if e.onAnalyze != nil {
		e.onAnalyze(key)
	}
	return &Snapshot{
		Key:         key,
		Seq:         snapshotSeq(key, gen),
		gen:         gen,
		Graph:       g,
		Edge:        res.Edge,
		Values:      res.Values,
		ColorValues: res.ColorValues,
		Terrain:     res.Terrain,
		Spectrum:    contour.NewSpectrum(res.Terrain.Tree),
	}, nil
}

// fieldValues resolves the raw field of a registered measure over the
// snapshot's graph, for the correlation operations. The snapshot's own
// height and color fields are served from the snapshot itself; other
// measures are computed once and LRU-cached per (dataset, measure).
func (e *Engine) fieldValues(snap *Snapshot, measure string) ([]float64, bool, error) {
	switch {
	case measure == snap.Key.Measure:
		return snap.Values, snap.Edge, nil
	case measure != "" && measure == snap.Key.Color && snap.ColorValues != nil:
		return snap.ColorValues, snap.Edge, nil
	}
	entry, err := e.fields.Do(fieldKey{dataset: snap.Key.Dataset, measure: measure}, func() (fieldEntry, error) {
		values, edge, err := scalarfield.MeasureValues(snap.Graph, measure, true)
		if err != nil {
			return fieldEntry{}, err
		}
		return fieldEntry{values: values, edge: edge}, nil
	})
	if err != nil {
		return nil, false, err
	}
	return entry.values, entry.edge, nil
}
