package query

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/resilience"
)

// snapshotServer serves one engine's snapshot-exchange endpoint over
// httptest, answering GETs from the given local lookup.
func snapshotServer(t *testing.T, e *Engine, local func(Key) (*Snapshot, bool)) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(&SnapshotHandler{Engine: e, Local: local})
	t.Cleanup(srv.Close)
	return srv
}

// TestPeerStoreHydratesFromPeer is the hydration half of the tentpole
// in miniature: node B misses locally, fetches A's encoded snapshot,
// verifies it, and answers byte-identically with zero local analyses.
func TestPeerStoreHydratesFromPeer(t *testing.T) {
	key := Key{Dataset: "tiny", Measure: "kcore", Color: "degree"}
	eA := testEngine(t, Options{})
	snapA, err := eA.Snapshot(key)
	if err != nil {
		t.Fatal(err)
	}
	srv := snapshotServer(t, eA, func(k Key) (*Snapshot, bool) {
		if k == key {
			return snapA, true
		}
		return nil, false
	})

	var fetched []string
	ps := &PeerStore{
		Inner: NewMemorySnapshotStore(4),
		Self:  "b",
		Owner: func(Key) string { return "a" },
		Peers: func() map[string]string { return map[string]string{"a": srv.URL} },
		OnFetch: func(k Key, peer string) {
			fetched = append(fetched, peer)
		},
	}
	eB := NewEngine(Options{Store: ps})
	eB.RegisterDataset("tiny", testGraph())
	ps.Generation = eB.DatasetGeneration

	snapB, err := eB.Snapshot(key)
	if err != nil {
		t.Fatal(err)
	}
	if got := eB.AnalysisCount(); got != 0 {
		t.Fatalf("hydrating node ran %d analyses, want 0", got)
	}
	if len(fetched) != 1 || fetched[0] != "a" {
		t.Fatalf("OnFetch fired %v, want one fetch from a", fetched)
	}
	if snapB.Seq != snapA.Seq {
		t.Fatalf("hydrated seq %d != owner's %d", snapB.Seq, snapA.Seq)
	}
	if want, got := resolveJSON(t, eA, snapA), resolveJSON(t, eB, snapB); !bytes.Equal(want, got) {
		t.Fatalf("hydrated snapshot answers differently:\nwant %s\ngot  %s", want, got)
	}
	// The fetched snapshot landed in the inner store: the next request
	// is a plain local hit, no second fetch.
	if _, err := eB.Snapshot(key); err != nil {
		t.Fatal(err)
	}
	if len(fetched) != 1 {
		t.Fatalf("second request re-fetched (%v)", fetched)
	}
}

// TestPeerStoreMissFallsThroughToAnalysis: a fleet of clean 404s must
// degrade to exactly one local analysis, not an error.
func TestPeerStoreMissFallsThroughToAnalysis(t *testing.T) {
	key := Key{Dataset: "tiny", Measure: "kcore"}
	eA := testEngine(t, Options{})
	srv := snapshotServer(t, eA, func(Key) (*Snapshot, bool) { return nil, false })

	ps := &PeerStore{
		Inner: NewMemorySnapshotStore(4),
		Self:  "b",
		Peers: func() map[string]string { return map[string]string{"a": srv.URL} },
	}
	eB := NewEngine(Options{Store: ps})
	eB.RegisterDataset("tiny", testGraph())
	ps.Generation = eB.DatasetGeneration

	if _, err := eB.Snapshot(key); err != nil {
		t.Fatal(err)
	}
	if got := eB.AnalysisCount(); got != 1 {
		t.Fatalf("ran %d analyses after peer 404, want 1", got)
	}
}

// TestPeerStoreRejectsDivergedGeneration: a peer whose snapshot was
// analyzed under another invalidation generation must not hydrate —
// the receiver falls through to a fresh analysis under its own
// generation.
func TestPeerStoreRejectsDivergedGeneration(t *testing.T) {
	key := Key{Dataset: "tiny", Measure: "kcore"}
	eA := testEngine(t, Options{})
	snapA, err := eA.Snapshot(key) // generation 0
	if err != nil {
		t.Fatal(err)
	}
	srv := snapshotServer(t, eA, func(k Key) (*Snapshot, bool) {
		if k == key {
			return snapA, true
		}
		return nil, false
	})

	ps := &PeerStore{
		Inner: NewMemorySnapshotStore(4),
		Self:  "b",
		Peers: func() map[string]string { return map[string]string{"a": srv.URL} },
		Retry: resilience.RetryConfig{Attempts: 1},
	}
	eB := NewEngine(Options{Store: ps})
	eB.RegisterDataset("tiny", testGraph())
	ps.Generation = eB.DatasetGeneration
	eB.Invalidate("tiny") // B is at generation 1; A's snapshot is not

	snapB, err := eB.Snapshot(key)
	if err != nil {
		t.Fatal(err)
	}
	if got := eB.AnalysisCount(); got != 1 {
		t.Fatalf("ran %d analyses, want 1 (stale peer snapshot must be rejected)", got)
	}
	if snapB.Seq == snapA.Seq {
		t.Fatal("post-invalidation snapshot reused the pre-invalidation seq")
	}
}

// TestSnapshotPushAdoptsAndConflicts covers the handoff PUT: a push
// matching the receiver's generation is adopted (the receiver then
// serves it with zero analyses); a push from a diverged generation is
// rejected with 409.
func TestSnapshotPushAdoptsAndConflicts(t *testing.T) {
	key := Key{Dataset: "tiny", Measure: "kcore", Color: "degree"}
	eA := testEngine(t, Options{})
	snapA, err := eA.Snapshot(key)
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	if err := EncodeSnapshot(&body, snapA); err != nil {
		t.Fatal(err)
	}

	pushed := 0
	eB := testEngine(t, Options{})
	srv := httptest.NewServer(&SnapshotHandler{
		Engine: eB,
		OnPush: func(Key) { pushed++ },
	})
	defer srv.Close()

	put := func(t *testing.T) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPut, SnapshotFetchURL(srv.URL, key), bytes.NewReader(body.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	if resp := put(t); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("push status %d, want 204", resp.StatusCode)
	}
	if pushed != 1 {
		t.Fatalf("OnPush fired %d times, want 1", pushed)
	}
	snapB, err := eB.Snapshot(key)
	if err != nil {
		t.Fatal(err)
	}
	if got := eB.AnalysisCount(); got != 0 {
		t.Fatalf("receiver ran %d analyses after push, want 0", got)
	}
	if want, got := resolveJSON(t, eA, snapA), resolveJSON(t, eB, snapB); !bytes.Equal(want, got) {
		t.Fatalf("pushed snapshot answers differently:\nwant %s\ngot  %s", want, got)
	}

	// After an invalidation the same push is stale: 409, not adopted.
	eB.Invalidate("tiny")
	if resp := put(t); resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale push status %d, want 409", resp.StatusCode)
	}
	if pushed != 1 {
		t.Fatal("stale push fired OnPush")
	}
}

// TestSnapshotHandlerRejectsMismatchedPath: the path hash is
// self-verifying — a URL whose hash does not match its own query
// parameters is a 400.
func TestSnapshotHandlerRejectsMismatchedPath(t *testing.T) {
	e := testEngine(t, Options{})
	srv := snapshotServer(t, e, func(Key) (*Snapshot, bool) { return nil, false })
	wrong := strings.Replace(
		SnapshotFetchURL(srv.URL, Key{Dataset: "tiny", Measure: "kcore"}),
		"measure=kcore", "measure=degree", 1)
	resp, err := http.Get(wrong)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched path status %d, want 400", resp.StatusCode)
	}
}

// TestInvalidationHandlerPropagatesGenerations: the origin form bumps
// (firing OnInvalidate), the gen= form adopts without re-firing, and
// stale redeliveries are no-ops.
func TestInvalidationHandlerPropagatesGenerations(t *testing.T) {
	var broadcasts []uint64
	e := NewEngine(Options{
		OnInvalidate: func(dataset string, gen uint64) { broadcasts = append(broadcasts, gen) },
	})
	e.RegisterDataset("tiny", testGraph())
	srv := httptest.NewServer(&InvalidationHandler{Engine: e})
	defer srv.Close()

	post := func(t *testing.T, query string) int {
		t.Helper()
		resp, err := http.Post(srv.URL+"/api/v1/invalidate?"+query, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if status := post(t, "dataset=tiny"); status != http.StatusOK {
		t.Fatalf("origin invalidate status %d", status)
	}
	if got := e.DatasetGeneration("tiny"); got != 1 {
		t.Fatalf("generation %d after origin invalidate, want 1", got)
	}
	if len(broadcasts) != 1 || broadcasts[0] != 1 {
		t.Fatalf("OnInvalidate fired %v, want [1]", broadcasts)
	}
	// A propagated broadcast adopts the absolute generation silently.
	if status := post(t, "dataset=tiny&gen=5"); status != http.StatusOK {
		t.Fatalf("adopt status %d", status)
	}
	if got := e.DatasetGeneration("tiny"); got != 5 {
		t.Fatalf("generation %d after adopt, want 5", got)
	}
	// Stale redelivery: no regression.
	post(t, "dataset=tiny&gen=3")
	if got := e.DatasetGeneration("tiny"); got != 5 {
		t.Fatalf("stale broadcast regressed generation to %d", got)
	}
	if len(broadcasts) != 1 {
		t.Fatalf("adopted broadcasts re-fired OnInvalidate: %v", broadcasts)
	}
}

// TestGenerationFileDurability: Saves survive reopening; a corrupt
// file is quarantined and the table restarts empty instead of
// refusing to start.
func TestGenerationFileDurability(t *testing.T) {
	path := filepath.Join(t.TempDir(), "generations")
	g1, err := NewGenerationFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := g1.Save("tiny", 3); err != nil {
		t.Fatal(err)
	}
	if err := g1.Save("other", 1); err != nil {
		t.Fatal(err)
	}
	// Monotonic: a stale save must not regress the table.
	if err := g1.Save("tiny", 2); err != nil {
		t.Fatal(err)
	}

	g2, err := NewGenerationFile(path)
	if err != nil {
		t.Fatal(err)
	}
	gens, err := g2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if gens["tiny"] != 3 || gens["other"] != 1 {
		t.Fatalf("reloaded generations %v, want tiny=3 other=1", gens)
	}

	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	g3, err := NewGenerationFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if gens, _ := g3.Load(); len(gens) != 0 {
		t.Fatalf("corrupt file yielded generations %v, want empty", gens)
	}
	if _, err := os.Stat(filepath.Join(filepath.Dir(path), corruptPrefix+filepath.Base(path))); err != nil {
		t.Fatalf("corrupt generation file was not quarantined: %v", err)
	}
}

// TestDurableGenerationsSurviveRestart is the acceptance criterion's
// restart-durability scenario: analyze, invalidate, re-analyze, then
// restart the whole storage stack — the reloaded engine serves the
// post-invalidation snapshot with the same Seq and zero analyses.
func TestDurableGenerationsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	key := Key{Dataset: "tiny", Measure: "kcore", Color: "degree"}
	newStack := func(t *testing.T) *Engine {
		t.Helper()
		store, err := NewDiskStore(filepath.Join(dir, "snaps"), 0)
		if err != nil {
			t.Fatal(err)
		}
		gens, err := NewGenerationFile(filepath.Join(dir, "generations"))
		if err != nil {
			t.Fatal(err)
		}
		e := NewEngine(Options{Store: store, Generations: gens})
		e.RegisterDataset("tiny", testGraph())
		return e
	}

	e1 := newStack(t)
	if _, err := e1.Snapshot(key); err != nil {
		t.Fatal(err)
	}
	e1.Invalidate("tiny")
	snap1, err := e1.Snapshot(key)
	if err != nil {
		t.Fatal(err)
	}
	if got := e1.AnalysisCount(); got != 2 {
		t.Fatalf("first lifetime ran %d analyses, want 2", got)
	}
	want := resolveJSON(t, e1, snap1)

	e2 := newStack(t)
	if got := e2.DatasetGeneration("tiny"); got != 1 {
		t.Fatalf("restarted generation %d, want 1", got)
	}
	snap2, err := e2.Snapshot(key)
	if err != nil {
		t.Fatal(err)
	}
	if got := e2.AnalysisCount(); got != 0 {
		t.Fatalf("restarted engine re-analyzed (%d), want 0", got)
	}
	if snap2.Seq != snap1.Seq {
		t.Fatalf("restarted seq %d != pre-restart %d", snap2.Seq, snap1.Seq)
	}
	if got := resolveJSON(t, e2, snap2); !bytes.Equal(want, got) {
		t.Fatalf("restarted snapshot answers differently:\nwant %s\ngot  %s", want, got)
	}
}

// TestSeqGuardEvictsStaleDiskEntry pins the crash-window closure: a
// persisted generation ahead of a stale on-disk snapshot (the crash
// landed between Invalidate's persist and its eviction) must read as
// a miss, not serve pre-invalidation data.
func TestSeqGuardEvictsStaleDiskEntry(t *testing.T) {
	dir := t.TempDir()
	key := Key{Dataset: "tiny", Measure: "kcore"}
	store1, err := NewDiskStore(filepath.Join(dir, "snaps"), 0)
	if err != nil {
		t.Fatal(err)
	}
	gens1, err := NewGenerationFile(filepath.Join(dir, "generations"))
	if err != nil {
		t.Fatal(err)
	}
	e1 := NewEngine(Options{Store: store1, Generations: gens1})
	e1.RegisterDataset("tiny", testGraph())
	snap1, err := e1.Snapshot(key)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the crash window: the generation persists but the
	// snapshot eviction never runs.
	if err := gens1.Save("tiny", 1); err != nil {
		t.Fatal(err)
	}

	store2, err := NewDiskStore(filepath.Join(dir, "snaps"), 0)
	if err != nil {
		t.Fatal(err)
	}
	gens2, err := NewGenerationFile(filepath.Join(dir, "generations"))
	if err != nil {
		t.Fatal(err)
	}
	e2 := NewEngine(Options{Store: store2, Generations: gens2})
	e2.RegisterDataset("tiny", testGraph())
	snap2, err := e2.Snapshot(key)
	if err != nil {
		t.Fatal(err)
	}
	if got := e2.AnalysisCount(); got != 1 {
		t.Fatalf("restart served the stale disk snapshot (%d analyses, want 1)", got)
	}
	if snap2.Seq == snap1.Seq {
		t.Fatal("post-crash snapshot reused the stale seq")
	}
}
