// Package query is the concurrent read path of the scalar-field
// pipeline: immutable analysis snapshots, cache-coalesced production,
// and a batched query API resolved against one consistent snapshot.
//
// The paper's interactions — α-cuts, peak selection, MCC lookups,
// contour spectra, multi-field correlation (Sections II-E, II-F) — all
// read products of one analysis run: the scalar field, its super scalar
// tree, the terrain layout, the spectrum. A server answering many
// concurrent readers must never hand out a torn mix of two analyses,
// and must not run the same analysis once per waiting reader. This
// package solves both with one construction:
//
//   - Snapshot: an immutable bundle of graph + scalar field(s) + super
//     tree + terrain + spectrum for one (dataset, measure, color, bins)
//     key. Nothing in a Snapshot is ever mutated after construction, so
//     any number of readers share it without locks.
//   - Engine: an LRU cache of Snapshots with singleflight coalescing —
//     N concurrent requests for an uncached key trigger exactly one
//     analysis through one pooled scalarfield.Analyzer, and everyone
//     waits for that run's result.
//   - a batched operation API (ops.go, http.go): one request carries a
//     list of operations, all answered from a single Snapshot, so a
//     client's α-cut, peak list, and GCI can never disagree about which
//     analysis they describe.
//
// This is the seam later scaling work (sharding, async re-analysis,
// streaming invalidation via internal/stream) plugs into: everything
// above it sees only immutable Snapshots.
package query

import (
	"fmt"
	"sync/atomic"

	scalarfield "repro"
	"repro/internal/contour"
	"repro/internal/graph"
)

// Key identifies one analysis: which dataset, which height measure,
// which (possibly empty) color measure, and how many simplification
// bins. Two requests with equal Keys are answered by the same
// Snapshot.
type Key struct {
	Dataset string `json:"dataset"`
	Measure string `json:"measure"`
	Color   string `json:"color,omitempty"`
	Bins    int    `json:"bins,omitempty"`
}

// ShardString is the canonical routing and hashing form of a key: a
// deterministic, injective flattening of its fields. The consistent-
// hash ring (internal/shard) and the disk store's filenames both hash
// it, so every process in a fleet maps a key to the same owner and the
// same file name.
func (k Key) ShardString() string {
	return fmt.Sprintf("%s\x00%s\x00%s\x00%d", k.Dataset, k.Measure, k.Color, k.Bins)
}

// Snapshot is one immutable analysis: every product a reader needs,
// produced by a single pipeline run over a single graph. Snapshots are
// never mutated after construction — handlers may hold one across an
// entire multi-operation request and answer everything consistently,
// and may keep it after the Engine has evicted the cache entry.
type Snapshot struct {
	// Key is the identity this snapshot was produced for.
	Key Key
	// Seq is the analysis identity number: a deterministic hash of the
	// key and the dataset's invalidation generation. Processes that
	// have seen the same invalidation history therefore agree on it —
	// a fresh fleet's nodes, a restarted process serving disk-stored
	// snapshots, coalesced concurrent requesters — which is what lets
	// a forwarded query response match the owner's byte for byte.
	// Invalidate bumps the generation, so a re-analysis after a data
	// change gets a new Seq while a plain LRU-eviction re-analysis
	// (same inputs, same products) keeps its old one.
	//
	// The generation counter is durable when the engine is given a
	// GenerationStore (cmd/serve wires a GenerationFile under
	// -store-dir): every bump persists atomically before caches evict,
	// so a restarted process re-derives the same Seq for every key and
	// serves its disk-cached snapshots without re-analyzing. Without a
	// GenerationStore the counter is process-local and a restart
	// resets it to zero — Seq equality is then only meaningful within
	// one process lifetime's invalidation lineage.
	Seq uint64
	// gen is the dataset invalidation generation this snapshot was
	// analyzed under; the engine's insert guard compares it against the
	// current generation so a completing analysis that raced an
	// Invalidate can never re-insert a stale snapshot.
	gen uint64
	// Graph is the immutable dataset graph.
	Graph *graph.Graph
	// Edge reports whether the height measure is edge-based (fields
	// index edges and the tree is Algorithm 3's) rather than
	// vertex-based (Algorithm 1).
	Edge bool
	// Values is the raw height field: one scalar per vertex or edge.
	Values []float64
	// ColorValues is the raw color field when Key.Color is set; nil
	// otherwise. Same basis and length as Values.
	ColorValues []float64
	// Terrain is the laid-out, colored terrain over the super scalar
	// tree (possibly simplified by Key.Bins).
	Terrain *scalarfield.Terrain
	// Spectrum is the contour spectrum B0(α) of the super tree.
	Spectrum *contour.Spectrum

	// ref counts references to the graph's backing file mapping, when
	// there is one (a DiskStore in mmap mode decodes the graph section
	// in place — see mmapSnapshotRef). nil for heap-backed snapshots,
	// which is every snapshot a fresh analysis produces: their Retain
	// and Release are no-ops, so callers follow one contract
	// everywhere.
	ref *mappingRef
}

// mappingRef counts the holders of a snapshot whose graph aliases a
// file mapping: the disk store's open-entry LRU owns the creation
// reference, and every Get hands its caller one more. When the count
// reaches zero the mapping is released (munmap on linux). A holder
// that forgets Release leaks a mapping — deliberately the failure
// mode, since the alternative (eager unmap) would turn a forgotten
// reference into a use-after-unmap fault in a reader.
type mappingRef struct {
	refs    atomic.Int64
	release func()
}

// newMappedSnapshotRef wires release to fire when the count drops to
// zero, starting at one: the creation reference, owned by whoever
// constructed the snapshot (the disk store assigns it to its open
// LRU).
func newMappedSnapshotRef(release func()) *mappingRef {
	r := &mappingRef{release: release}
	r.refs.Store(1)
	return r
}

// Retain adds a reference to the snapshot's backing mapping. No-op
// for heap-backed snapshots. Callers receive snapshots already
// retained on their behalf (Engine.Snapshot, SnapshotStore.Get);
// Retain is for handing a held snapshot to another holder with its
// own lifetime.
func (s *Snapshot) Retain() {
	if s.ref != nil {
		s.ref.refs.Add(1)
	}
}

// Release drops one reference, releasing the backing mapping when the
// last holder lets go. No-op for heap-backed snapshots, so every
// consumer of Engine.Snapshot can (and should) defer it
// unconditionally. Calling Release more times than Retain+1 is a
// bookkeeping bug; the count going negative panics loudly rather than
// unmapping memory some holder still reads.
func (s *Snapshot) Release() {
	if s.ref == nil {
		return
	}
	switch n := s.ref.refs.Add(-1); {
	case n == 0:
		s.ref.release()
	case n < 0:
		panic("query: Snapshot.Release without matching reference")
	}
}

// Info is the wire-format identity block of a Snapshot, echoed on
// every batch response so clients can tell which analysis answered.
type Info struct {
	Key
	Edge       bool   `json:"edge"`
	Seq        uint64 `json:"seq"`
	SuperNodes int    `json:"superNodes"`
	Items      int    `json:"items"`
}

// Info returns the snapshot's wire identity.
func (s *Snapshot) Info() Info {
	return Info{
		Key:        s.Key,
		Edge:       s.Edge,
		Seq:        s.Seq,
		SuperNodes: s.Terrain.Tree.Len(),
		Items:      s.Terrain.Tree.NumItems(),
	}
}
