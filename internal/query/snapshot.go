// Package query is the concurrent read path of the scalar-field
// pipeline: immutable analysis snapshots, cache-coalesced production,
// and a batched query API resolved against one consistent snapshot.
//
// The paper's interactions — α-cuts, peak selection, MCC lookups,
// contour spectra, multi-field correlation (Sections II-E, II-F) — all
// read products of one analysis run: the scalar field, its super scalar
// tree, the terrain layout, the spectrum. A server answering many
// concurrent readers must never hand out a torn mix of two analyses,
// and must not run the same analysis once per waiting reader. This
// package solves both with one construction:
//
//   - Snapshot: an immutable bundle of graph + scalar field(s) + super
//     tree + terrain + spectrum for one (dataset, measure, color, bins)
//     key. Nothing in a Snapshot is ever mutated after construction, so
//     any number of readers share it without locks.
//   - Engine: an LRU cache of Snapshots with singleflight coalescing —
//     N concurrent requests for an uncached key trigger exactly one
//     analysis through one pooled scalarfield.Analyzer, and everyone
//     waits for that run's result.
//   - a batched operation API (ops.go, http.go): one request carries a
//     list of operations, all answered from a single Snapshot, so a
//     client's α-cut, peak list, and GCI can never disagree about which
//     analysis they describe.
//
// This is the seam later scaling work (sharding, async re-analysis,
// streaming invalidation via internal/stream) plugs into: everything
// above it sees only immutable Snapshots.
package query

import (
	scalarfield "repro"
	"repro/internal/contour"
	"repro/internal/graph"
)

// Key identifies one analysis: which dataset, which height measure,
// which (possibly empty) color measure, and how many simplification
// bins. Two requests with equal Keys are answered by the same
// Snapshot.
type Key struct {
	Dataset string `json:"dataset"`
	Measure string `json:"measure"`
	Color   string `json:"color,omitempty"`
	Bins    int    `json:"bins,omitempty"`
}

// Snapshot is one immutable analysis: every product a reader needs,
// produced by a single pipeline run over a single graph. Snapshots are
// never mutated after construction — handlers may hold one across an
// entire multi-operation request and answer everything consistently,
// and may keep it after the Engine has evicted the cache entry.
type Snapshot struct {
	// Key is the identity this snapshot was produced for.
	Key Key
	// Seq is a process-unique, monotonically increasing analysis
	// sequence number: two Snapshots are the same analysis iff their
	// Seqs are equal. Consistency tests key off it.
	Seq uint64
	// Graph is the immutable dataset graph.
	Graph *graph.Graph
	// Edge reports whether the height measure is edge-based (fields
	// index edges and the tree is Algorithm 3's) rather than
	// vertex-based (Algorithm 1).
	Edge bool
	// Values is the raw height field: one scalar per vertex or edge.
	Values []float64
	// ColorValues is the raw color field when Key.Color is set; nil
	// otherwise. Same basis and length as Values.
	ColorValues []float64
	// Terrain is the laid-out, colored terrain over the super scalar
	// tree (possibly simplified by Key.Bins).
	Terrain *scalarfield.Terrain
	// Spectrum is the contour spectrum B0(α) of the super tree.
	Spectrum *contour.Spectrum
}

// Info is the wire-format identity block of a Snapshot, echoed on
// every batch response so clients can tell which analysis answered.
type Info struct {
	Key
	Edge       bool   `json:"edge"`
	Seq        uint64 `json:"seq"`
	SuperNodes int    `json:"superNodes"`
	Items      int    `json:"items"`
}

// Info returns the snapshot's wire identity.
func (s *Snapshot) Info() Info {
	return Info{
		Key:        s.Key,
		Edge:       s.Edge,
		Seq:        s.Seq,
		SuperNodes: s.Terrain.Tree.Len(),
		Items:      s.Terrain.Tree.NumItems(),
	}
}
