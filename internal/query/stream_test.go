package query

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/stream"
)

// TestWatchStreamInvalidatesOnUpdate is the streaming-invalidation
// acceptance test: once a dataset's monitor is wired to the engine, a
// monotone update (RaiseScalar) evicts the cached snapshot, so the next
// query re-analyzes instead of serving the stale analysis forever.
func TestWatchStreamInvalidatesOnUpdate(t *testing.T) {
	e := testEngine(t, Options{})
	key := Key{Dataset: "tiny", Measure: "kcore"}

	if _, err := e.Snapshot(key); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Snapshot(key); err != nil {
		t.Fatal(err)
	}
	if got := e.AnalysisCount(); got != 1 {
		t.Fatalf("%d analyses before any update, want 1 (cache must hold)", got)
	}

	m := stream.NewMonitor(2, []float64{1, 1, 1, 1, 1, 1, 1})
	e.WatchStream("tiny", m)

	// A monotone update on the watched dataset evicts its snapshots.
	if err := m.RaiseScalar(3, 5); err != nil {
		t.Fatal(err)
	}
	if e.Cached(key) {
		t.Fatal("snapshot still cached after a stream update")
	}
	if _, err := e.Snapshot(key); err != nil {
		t.Fatal(err)
	}
	if got := e.AnalysisCount(); got != 2 {
		t.Fatalf("%d analyses after the update, want 2 (query must re-analyze)", got)
	}

	// Edge and vertex updates invalidate too.
	if _, err := e.Snapshot(key); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddEdge(0, 3); err != nil {
		t.Fatal(err)
	}
	if e.Cached(key) {
		t.Fatal("snapshot survived AddEdge on a watched dataset")
	}
	m.AddVertex(7)
	if _, err := e.Snapshot(key); err != nil {
		t.Fatal(err)
	}

	// The full freshness loop: the updater re-registers the rebuilt
	// graph alongside the stream updates (the Monitor tracks
	// components, not the engine's graph), and eviction guarantees the
	// next query analyzes the new registration — the served field
	// actually changes, not just the analysis count.
	before, err := e.Snapshot(key)
	if err != nil {
		t.Fatal(err)
	}
	g2 := graph.FromEdges(7, append(append([]graph.Edge(nil), testGraph().Edges()...),
		graph.Edge{U: 0, V: 3}, graph.Edge{U: 1, V: 4}, graph.Edge{U: 2, V: 5}))
	e.RegisterDataset("tiny", g2)
	// A fresh edge (AddEdge(0,3) above is already known and would
	// dedup to a no-op): the new update evicts the stale snapshot.
	if _, err := m.AddEdge(1, 4); err != nil {
		t.Fatal(err)
	}
	after, err := e.Snapshot(key)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(before.Values, after.Values) {
		t.Fatal("re-analysis after re-registration served the old field")
	}
	if after.Graph != g2 {
		t.Fatal("re-analysis did not pick up the re-registered graph")
	}

	// Other datasets are untouched: only the watched name is evicted.
	other := Key{Dataset: "tiny2", Measure: "kcore"}
	e.RegisterDataset("tiny2", testGraph())
	if _, err := e.Snapshot(other); err != nil {
		t.Fatal(err)
	}
	if err := m.RaiseScalar(0, 9); err != nil {
		t.Fatal(err)
	}
	if !e.Cached(other) {
		t.Fatal("update on tiny evicted tiny2's snapshot")
	}
}

// TestMonitorOnUpdateFiresOnlyOnChange pins the hook's semantics at the
// stream level: accepted state changes fire, rejected or no-op updates
// do not.
func TestMonitorOnUpdateFiresOnlyOnChange(t *testing.T) {
	m := stream.NewMonitor(2, []float64{3, 1})
	fired := 0
	m.OnUpdate(func() { fired++ })

	if err := m.RaiseScalar(1, 1); err != nil || fired != 0 {
		t.Fatalf("no-op RaiseScalar: err=%v fired=%d", err, fired)
	}
	if err := m.RaiseScalar(1, 0.5); err == nil {
		t.Fatal("decrease must be rejected")
	}
	if fired != 0 {
		t.Fatalf("rejected update fired the hook %d times", fired)
	}
	if _, err := m.AddEdge(0, 1); err != nil || fired != 1 {
		t.Fatalf("parked AddEdge: err=%v fired=%d, want 1", err, fired)
	}
	if _, err := m.AddEdge(0, 1); err != nil || fired != 1 {
		t.Fatalf("duplicate parked AddEdge must not fire: fired=%d", fired)
	}
	if err := m.RaiseScalar(1, 2); err != nil || fired != 2 {
		t.Fatalf("activating RaiseScalar: err=%v fired=%d, want 2", err, fired)
	}
	// Redelivering the now-replayed edge between two active, already
	// connected vertices is a no-op and must not fire: an at-least-once
	// stream would otherwise evict snapshots on every redelivery.
	if _, err := m.AddEdge(0, 1); err != nil || fired != 2 {
		t.Fatalf("duplicate active AddEdge: err=%v fired=%d, want 2", err, fired)
	}
	m.AddVertex(0)
	if fired != 3 {
		t.Fatalf("AddVertex fired=%d, want 3", fired)
	}
	m.AddVertex(9)
	if fired != 4 {
		t.Fatalf("active AddVertex fired=%d, want 4", fired)
	}
	// A genuinely new active-active edge fires even when it merges
	// nothing new structurally... here it does merge (fresh component).
	if _, err := m.AddEdge(0, 3); err != nil || fired != 5 {
		t.Fatalf("new active AddEdge: err=%v fired=%d, want 5", err, fired)
	}
	if _, err := m.AddEdge(0, 3); err != nil || fired != 5 {
		t.Fatalf("redelivered active AddEdge fired=%d, want 5", fired)
	}
}
