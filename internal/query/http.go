package query

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"

	scalarfield "repro"
)

// MaxOps bounds the operations accepted in one batch request.
const MaxOps = 256

// maxRequestBytes bounds the request body.
const maxRequestBytes = 1 << 20

// Request is the body of POST /api/v1/query: an optional snapshot key
// override plus the operation batch. Key fields left unset fall back
// to the handler's defaults (the viewer's current selection in
// cmd/serve). Color and Bins are pointers so an explicit empty color
// or zero bins overrides a non-empty default.
type Request struct {
	Dataset string  `json:"dataset,omitempty"`
	Measure string  `json:"measure,omitempty"`
	Color   *string `json:"color,omitempty"`
	Bins    *int    `json:"bins,omitempty"`
	Ops     []Op    `json:"ops"`
}

// Response carries the identity of the snapshot that answered —
// clients use Seq to correlate batches — and one result per operation,
// in request order.
type Response struct {
	Snapshot Info       `json:"snapshot"`
	Results  []OpResult `json:"results"`
}

// Handler serves the batched query API over an Engine. Safe for
// concurrent use.
type Handler struct {
	Engine *Engine
	// Defaults supplies the key fields a request leaves unset. Nil
	// means requests must name at least dataset and measure.
	Defaults func() Key
}

// ServeHTTP answers one batch: resolve the snapshot key, get-or-build
// the snapshot (coalesced with every concurrent request for the same
// key), and answer all operations from that one snapshot.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req Request
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes)).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return
	}
	if len(req.Ops) == 0 {
		http.Error(w, "empty ops batch", http.StatusBadRequest)
		return
	}
	if len(req.Ops) > MaxOps {
		http.Error(w, fmt.Sprintf("%d ops in one batch (max %d)", len(req.Ops), MaxOps), http.StatusBadRequest)
		return
	}

	var key Key
	if h.Defaults != nil {
		key = h.Defaults()
	}
	if req.Dataset != "" {
		key.Dataset = req.Dataset
	}
	if req.Measure != "" {
		key.Measure = req.Measure
	}
	if req.Color != nil {
		key.Color = *req.Color
	} else if key.Color != "" {
		// The color came from the defaults, not the request. Like the
		// viewer's sticky color preference, it carries over only while
		// it shares the requested measure's basis — a request that
		// just switches kcore→ktruss must not fail on the viewer's
		// vertex-based coloring. An explicit req.Color still fails
		// loudly above: that mismatch is the client's own.
		mInfo, mok := scalarfield.LookupMeasure(key.Measure)
		cInfo, cok := scalarfield.LookupMeasure(key.Color)
		if !mok || !cok || mInfo.Edge != cInfo.Edge {
			key.Color = ""
		}
	}
	if req.Bins != nil {
		key.Bins = *req.Bins
	}

	snap, err := h.Engine.Snapshot(key)
	if err != nil {
		status := http.StatusInternalServerError
		var ce *ClientError
		if errors.As(err, &ce) {
			status = http.StatusBadRequest
		}
		http.Error(w, err.Error(), status)
		return
	}
	resp := Response{Snapshot: snap.Info(), Results: h.Engine.Resolve(snap, req.Ops)}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		log.Printf("query: encoding response: %v", err)
	}
}
