package query

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"

	scalarfield "repro"
)

// MaxOps bounds the operations accepted in one batch request.
const MaxOps = 256

// maxRequestBytes bounds the request body.
const maxRequestBytes = 1 << 20

// Request is the body of POST /api/v1/query: an optional snapshot key
// override plus the operation batch. Key fields left unset fall back
// to the handler's defaults (the viewer's current selection in
// cmd/serve). Color and Bins are pointers so an explicit empty color
// or zero bins overrides a non-empty default.
type Request struct {
	Dataset string  `json:"dataset,omitempty"`
	Measure string  `json:"measure,omitempty"`
	Color   *string `json:"color,omitempty"`
	Bins    *int    `json:"bins,omitempty"`
	Ops     []Op    `json:"ops"`
}

// Response carries the identity of the snapshot that answered —
// clients use Seq to correlate batches — and one result per operation,
// in request order.
type Response struct {
	Snapshot Info       `json:"snapshot"`
	Results  []OpResult `json:"results"`
}

// Handler serves the batched query API over an Engine. Safe for
// concurrent use.
type Handler struct {
	Engine *Engine
	// Defaults supplies the key fields a request leaves unset. Nil
	// means requests must name at least dataset and measure.
	Defaults func() Key
	// Route, when set, is the shard router: given the fully resolved
	// key it returns the base URL of the peer that owns it, or ok=false
	// when this node owns the key (or no routing applies). Owned keys
	// are served locally; non-owned keys are forwarded to the owner
	// over the same batch API — with the key fully pinned in the
	// forwarded body, so the peer's own Defaults cannot reinterpret it
	// — and the owner's response is relayed verbatim, byte for byte.
	// Forwarded requests carry ForwardedHeader; a request that already
	// carries it is always served locally, so a misconfigured ring
	// (two nodes disagreeing about ownership) degrades to an extra hop,
	// never a forwarding loop. If the owner is unreachable, the request
	// falls back to local service: availability over single-analysis
	// strictness.
	Route func(Key) (peerURL string, ok bool)
	// Client performs forwarded requests; nil means
	// http.DefaultClient. Analyses can take minutes on large datasets,
	// so any timeout should be generous.
	Client *http.Client
}

// ForwardedHeader marks a request that already crossed one shard hop.
const ForwardedHeader = "X-Scalarfield-Forwarded"

// ServeHTTP answers one batch: resolve the snapshot key, get-or-build
// the snapshot (coalesced with every concurrent request for the same
// key), and answer all operations from that one snapshot.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req Request
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes)).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return
	}
	if len(req.Ops) == 0 {
		http.Error(w, "empty ops batch", http.StatusBadRequest)
		return
	}
	if len(req.Ops) > MaxOps {
		http.Error(w, fmt.Sprintf("%d ops in one batch (max %d)", len(req.Ops), MaxOps), http.StatusBadRequest)
		return
	}

	var key Key
	if h.Defaults != nil {
		key = h.Defaults()
	}
	if req.Dataset != "" {
		key.Dataset = req.Dataset
	}
	if req.Measure != "" {
		key.Measure = req.Measure
	}
	if req.Color != nil {
		key.Color = *req.Color
	} else if key.Color != "" {
		// The color came from the defaults, not the request. Like the
		// viewer's sticky color preference, it carries over only while
		// it shares the requested measure's basis — a request that
		// just switches kcore→ktruss must not fail on the viewer's
		// vertex-based coloring. An explicit req.Color still fails
		// loudly above: that mismatch is the client's own.
		mInfo, mok := scalarfield.LookupMeasure(key.Measure)
		cInfo, cok := scalarfield.LookupMeasure(key.Color)
		if !mok || !cok || mInfo.Edge != cInfo.Edge {
			key.Color = ""
		}
	}
	if req.Bins != nil {
		key.Bins = *req.Bins
	}

	if h.Route != nil && r.Header.Get(ForwardedHeader) == "" {
		if peer, ok := h.Route(key); ok && peer != "" {
			if h.forward(w, peer, key, req.Ops) {
				return
			}
			// Forwarding failed (owner down / unreachable): serve
			// locally so the fleet degrades to extra analyses, not
			// errors.
		}
	}

	snap, err := h.Engine.Snapshot(key)
	if err != nil {
		status := http.StatusInternalServerError
		var ce *ClientError
		if errors.As(err, &ce) {
			status = http.StatusBadRequest
		}
		http.Error(w, err.Error(), status)
		return
	}
	resp := Response{Snapshot: snap.Info(), Results: h.Engine.Resolve(snap, req.Ops)}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		log.Printf("query: encoding response: %v", err)
	}
}

// forward relays the batch to the owning peer with the key fully
// pinned, then copies the peer's response — status, content type, body
// — verbatim, so a client cannot tell which node analyzed. Returns
// false (and writes nothing) when the peer could not be reached, so
// the caller can fall back to local service; any HTTP response from
// the peer, including an error status, counts as delivered and is
// relayed as-is (a 400 is the client's mistake wherever it surfaces).
func (h *Handler) forward(w http.ResponseWriter, peer string, key Key, ops []Op) bool {
	body, err := json.Marshal(Request{
		Dataset: key.Dataset,
		Measure: key.Measure,
		Color:   &key.Color,
		Bins:    &key.Bins,
		Ops:     ops,
	})
	if err != nil {
		return false
	}
	req, err := http.NewRequest(http.MethodPost, peer+"/api/v1/query", bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardedHeader, "1")
	client := h.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		log.Printf("query: forwarding %v to %s failed, serving locally: %v", key, peer, err)
		return false
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(w, resp.Body); err != nil {
		log.Printf("query: relaying response from %s: %v", peer, err)
	}
	return true
}
