package query

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"time"

	scalarfield "repro"
	"repro/internal/resilience"
)

// MaxOps bounds the operations accepted in one batch request.
const MaxOps = 256

// maxRequestBytes bounds the request body.
const maxRequestBytes = 1 << 20

// DefaultMaxRelayBytes caps a relayed peer response when the Handler
// does not set its own bound: large enough for any real batch answer
// (spectra over big stand-ins run to a few MB), small enough that a
// corrupt or hostile peer cannot balloon the relay.
const DefaultMaxRelayBytes = 64 << 20

// DefaultRetryAfter is the Retry-After hint on shed (503) responses.
const DefaultRetryAfter = time.Second

// Request is the body of POST /api/v1/query: an optional snapshot key
// override plus the operation batch. Key fields left unset fall back
// to the handler's defaults (the viewer's current selection in
// cmd/serve). Color and Bins are pointers so an explicit empty color
// or zero bins overrides a non-empty default.
type Request struct {
	Dataset string  `json:"dataset,omitempty"`
	Measure string  `json:"measure,omitempty"`
	Color   *string `json:"color,omitempty"`
	Bins    *int    `json:"bins,omitempty"`
	Ops     []Op    `json:"ops"`
}

// Response carries the identity of the snapshot that answered —
// clients use Seq to correlate batches — and one result per operation,
// in request order. Degraded, when non-empty, marks an explicitly
// degraded answer: "stale" means the fresh analysis failed or was shed
// and the results describe the last snapshot this node analyzed for
// the key (possibly predating an invalidation). Clients that cannot
// tolerate staleness must retry instead of consuming a degraded
// response.
type Response struct {
	Snapshot Info       `json:"snapshot"`
	Degraded string     `json:"degraded,omitempty"`
	Results  []OpResult `json:"results"`
}

// DegradedStale is the Response.Degraded marker for stale-if-error
// answers.
const DegradedStale = "stale"

// Handler serves the batched query API over an Engine. Safe for
// concurrent use.
type Handler struct {
	Engine *Engine
	// Defaults supplies the key fields a request leaves unset. Nil
	// means requests must name at least dataset and measure.
	Defaults func() Key
	// Route, when set, is the shard router: given the fully resolved
	// key it returns the base URL of the peer that owns it, or ok=false
	// when this node owns the key (or no routing applies). Owned keys
	// are served locally; non-owned keys are forwarded to the owner
	// over the same batch API — with the key fully pinned in the
	// forwarded body, so the peer's own Defaults cannot reinterpret it
	// — and the owner's response is relayed byte for byte (buffered and
	// size-capped first, so a peer that dies mid-body costs a retry or
	// a local fallback, never a truncated relay). Forwarded requests
	// carry ForwardedHeader; a request that already carries it is
	// always served locally, so a misconfigured ring (two nodes
	// disagreeing about ownership) degrades to an extra hop, never a
	// forwarding loop. If the owner is unreachable — or its breaker is
	// open — the request falls back to local service: availability over
	// single-analysis strictness.
	Route func(Key) (peerURL string, ok bool)
	// Client performs forwarded requests; nil means
	// http.DefaultClient. Analyses can take minutes on large datasets,
	// so any timeout should be generous — cmd/serve's -forward-timeout
	// flag sets it.
	Client *http.Client
	// Breakers, when set, gates forwarding per peer URL: a request
	// whose owner's breaker is open skips the forward entirely (no
	// dial, no timeout stall) and serves locally, and every forward
	// outcome feeds the breaker. The same set is fed by cmd/serve's
	// active /healthz probes, so a dead peer is usually discovered
	// before any request pays for the discovery.
	Breakers *resilience.BreakerSet
	// Retry tunes the bounded, jittered-backoff retry of failed
	// forward attempts (safe: the batch API is idempotent and nothing
	// has been relayed when an attempt fails). The zero value means 2
	// attempts, 50ms base backoff.
	Retry resilience.RetryConfig
	// MaxRelayBytes caps a buffered peer response; <= 0 means
	// DefaultMaxRelayBytes. A peer answer over the cap counts as a
	// failed attempt (the local fallback still answers correctly).
	MaxRelayBytes int64
	// RetryAfter is the Retry-After hint written on 503 responses;
	// <= 0 means DefaultRetryAfter.
	RetryAfter time.Duration
	// AllowStale enables stale-if-error serving: when the fresh path
	// fails or is shed and the engine still holds a previously
	// analyzed snapshot for the key, answer from it with Degraded:
	// "stale" instead of erroring. Client mistakes (400s) never serve
	// stale.
	AllowStale bool
	// ViewEpoch, when set, reports this node's membership-view epoch.
	// Forwarded requests are stamped with the sender's epoch
	// (ViewEpochHeader) and checked on receipt: a mismatch means the
	// two nodes routed under different rings — the moment two nodes
	// could disagree about a key's owner. The request is still served
	// locally (ForwardedHeader already guarantees at most one hop, so
	// disagreement degrades to an extra analysis, never a loop or a
	// wrong answer), but the divergence is surfaced through
	// OnEpochMismatch instead of passing silently.
	ViewEpoch func() uint64
	// OnEpochMismatch, when set, fires once per forwarded request that
	// arrives under a different view epoch than the receiver's, with
	// both epochs (metrics and test hook).
	OnEpochMismatch func(remote, local uint64)
}

// ForwardedHeader marks a request that already crossed one shard hop.
const ForwardedHeader = "X-Scalarfield-Forwarded"

// ViewEpochHeader carries the forwarding node's membership-view epoch
// so the receiver can detect ring disagreement (see Handler.ViewEpoch).
const ViewEpochHeader = "X-Scalarfield-View-Epoch"

// ServeHTTP answers one batch: resolve the snapshot key, get-or-build
// the snapshot (coalesced with every concurrent request for the same
// key, bounded by the incoming request's context), and answer all
// operations from that one snapshot.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req Request
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes)).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return
	}
	if len(req.Ops) == 0 {
		http.Error(w, "empty ops batch", http.StatusBadRequest)
		return
	}
	if len(req.Ops) > MaxOps {
		http.Error(w, fmt.Sprintf("%d ops in one batch (max %d)", len(req.Ops), MaxOps), http.StatusBadRequest)
		return
	}

	var key Key
	if h.Defaults != nil {
		key = h.Defaults()
	}
	if req.Dataset != "" {
		key.Dataset = req.Dataset
	}
	if req.Measure != "" {
		key.Measure = req.Measure
	}
	if req.Color != nil {
		key.Color = *req.Color
	} else if key.Color != "" {
		// The color came from the defaults, not the request. Like the
		// viewer's sticky color preference, it carries over only while
		// it shares the requested measure's basis — a request that
		// just switches kcore→ktruss must not fail on the viewer's
		// vertex-based coloring. An explicit req.Color still fails
		// loudly above: that mismatch is the client's own.
		mInfo, mok := scalarfield.LookupMeasure(key.Measure)
		cInfo, cok := scalarfield.LookupMeasure(key.Color)
		if !mok || !cok || mInfo.Edge != cInfo.Edge {
			key.Color = ""
		}
	}
	if req.Bins != nil {
		key.Bins = *req.Bins
	}

	if h.ViewEpoch != nil && r.Header.Get(ForwardedHeader) != "" {
		if remoteStr := r.Header.Get(ViewEpochHeader); remoteStr != "" {
			if remote, perr := strconv.ParseUint(remoteStr, 10, 64); perr == nil {
				if local := h.ViewEpoch(); remote != local {
					log.Printf("query: forwarded request for %v crossed view epochs (sender %d, local %d); serving locally", key, remote, local)
					if h.OnEpochMismatch != nil {
						h.OnEpochMismatch(remote, local)
					}
				}
			}
		}
	}

	if h.Route != nil && r.Header.Get(ForwardedHeader) == "" {
		if peer, ok := h.Route(key); ok && peer != "" {
			if h.forward(w, r, peer, key, req.Ops) {
				return
			}
			// Forwarding failed (owner down / unreachable / breaker
			// open): serve locally so the fleet degrades to extra
			// analyses, not errors.
		}
	}

	snap, degraded, err := h.resolveSnapshot(r.Context(), key)
	if err != nil {
		h.writeSnapshotError(w, err)
		return
	}
	// The request's reference on the snapshot (a disk store in mmap
	// mode counts holders of the graph mapping; heap snapshots no-op).
	defer snap.Release()
	resp := Response{Snapshot: snap.Info(), Degraded: degraded, Results: h.Engine.Resolve(snap, req.Ops)}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		log.Printf("query: encoding response: %v", err)
	}
}

// resolveSnapshot gets-or-builds the key's snapshot under ctx. On a
// non-client failure with AllowStale set, it falls back to the last
// snapshot this node analyzed for the key, marked DegradedStale.
func (h *Handler) resolveSnapshot(ctx context.Context, key Key) (snap *Snapshot, degraded string, err error) {
	snap, err = h.Engine.SnapshotCtx(ctx, key)
	if err == nil {
		return snap, "", nil
	}
	var ce *ClientError
	if h.AllowStale && !errors.As(err, &ce) {
		if stale, ok := h.Engine.StaleSnapshot(key); ok {
			log.Printf("query: serving stale snapshot for %v: fresh path failed: %v", key, err)
			return stale, DegradedStale, nil
		}
	}
	return nil, "", err
}

// writeSnapshotError maps a get-or-build failure to a status: client
// mistakes are 400s; overload sheds and context expiry are 503s with
// a Retry-After hint (the condition is transient by construction);
// genuine pipeline failures stay 500s.
func (h *Handler) writeSnapshotError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var ce *ClientError
	switch {
	case errors.As(err, &ce):
		status = http.StatusBadRequest
	case errors.Is(err, resilience.ErrOverloaded),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		status = http.StatusServiceUnavailable
		retryAfter := h.RetryAfter
		if retryAfter <= 0 {
			retryAfter = DefaultRetryAfter
		}
		secs := int(retryAfter.Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	http.Error(w, err.Error(), status)
}

// forward relays the batch to the owning peer with the key fully
// pinned. The peer's response is read completely (size-capped) before
// a byte is relayed, so every failure mode — dial error, mid-body
// reset, slow-loris timeout, oversized answer — leaves the
// ResponseWriter untouched and retriable: failed attempts retry with
// jittered backoff, and exhausting them returns false so the caller
// falls back to local service. Any complete HTTP response from the
// peer, including an error status, counts as delivered and is relayed
// as-is (a 400 is the client's mistake wherever it surfaces). Each
// attempt's outcome feeds the peer's breaker when one is configured,
// and an open breaker skips the whole forward without dialing.
func (h *Handler) forward(w http.ResponseWriter, r *http.Request, peer string, key Key, ops []Op) bool {
	var breaker *resilience.Breaker
	if h.Breakers != nil {
		breaker = h.Breakers.For(peer)
		if !breaker.Allow() {
			return false
		}
	}
	body, err := json.Marshal(Request{
		Dataset: key.Dataset,
		Measure: key.Measure,
		Color:   &key.Color,
		Bins:    &key.Bins,
		Ops:     ops,
	})
	if err != nil {
		return false
	}
	retry := h.Retry
	attempts := retry.Attempts
	if attempts <= 0 {
		attempts = 2
	}
	for attempt := 1; ; attempt++ {
		status, contentType, payload, err := h.tryForward(r.Context(), peer, body)
		if err == nil {
			if breaker != nil {
				breaker.Success()
			}
			if contentType != "" {
				w.Header().Set("Content-Type", contentType)
			}
			w.WriteHeader(status)
			if _, err := w.Write(payload); err != nil {
				log.Printf("query: relaying response from %s: %v", peer, err)
			}
			return true
		}
		if breaker != nil {
			breaker.Failure()
			// A half-open probe gets exactly one attempt; retrying
			// against a peer the breaker just re-opened only stalls
			// the fallback.
			if !breaker.Allow() {
				log.Printf("query: forwarding %v to %s failed (breaker open), serving locally: %v", key, peer, err)
				return false
			}
		}
		if attempt >= attempts {
			log.Printf("query: forwarding %v to %s failed after %d attempts, serving locally: %v", key, peer, attempt, err)
			return false
		}
		if serr := sleepBackoff(r.Context(), retry, attempt); serr != nil {
			return false
		}
	}
}

// tryForward performs one forward attempt: POST the pinned batch,
// read the full response up to the relay cap, and return it. The peer
// response body is closed on every path. Errors mean nothing was
// relayed, so the attempt is safely retriable.
func (h *Handler) tryForward(ctx context.Context, peer string, body []byte) (status int, contentType string, payload []byte, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+"/api/v1/query", bytes.NewReader(body))
	if err != nil {
		return 0, "", nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardedHeader, "1")
	if h.ViewEpoch != nil {
		req.Header.Set(ViewEpochHeader, strconv.FormatUint(h.ViewEpoch(), 10))
	}
	client := h.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, "", nil, err
	}
	defer resp.Body.Close()
	max := h.MaxRelayBytes
	if max <= 0 {
		max = DefaultMaxRelayBytes
	}
	payload, err = io.ReadAll(io.LimitReader(resp.Body, max+1))
	if err != nil {
		return 0, "", nil, fmt.Errorf("reading peer response: %w", err)
	}
	if int64(len(payload)) > max {
		return 0, "", nil, fmt.Errorf("peer response exceeds relay cap (%d bytes)", max)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), payload, nil
}

// sleepBackoff sleeps the attempt's jittered backoff, bounded by ctx.
func sleepBackoff(ctx context.Context, cfg resilience.RetryConfig, attempt int) error {
	d := cfg.Backoff(attempt)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
