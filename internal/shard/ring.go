// Package shard maps snapshot keys to the nodes of an analysis fleet
// with a consistent-hash ring.
//
// The ROADMAP's sharding design treats the snapshot key (dataset,
// measure, color, bins) as the unit of placement: every key has
// exactly one owner node, every node can compute the owner locally
// from nothing but the member list, and adding or removing one node
// moves only ~1/N of the keys (the classic consistent-hashing
// property) instead of reshuffling everything. Virtual nodes smooth
// the distribution: each member hashes to many points on the ring, so
// the arc a member owns is the union of many small arcs rather than
// one lottery-sized one.
//
// The ring is deterministic across processes — FNV-1a over the member
// name and virtual-node index, ties broken by name — which is the
// whole point: two fleet nodes given the same member list agree on
// every key's owner without talking to each other.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVirtualNodes is the per-member virtual-node count used when
// New is given vnodes <= 0. 64 points per member keeps the maximum
// member load within a few percent of the mean for small fleets.
const DefaultVirtualNodes = 64

// Ring is an immutable consistent-hash ring over a set of member
// names. Construct with New; all methods are safe for concurrent use.
type Ring struct {
	members []string
	points  []point // sorted by (hash, member)
}

type point struct {
	hash   uint64
	member string
}

// New builds a ring over the given member names with vnodes virtual
// nodes per member (<= 0 means DefaultVirtualNodes). Duplicate names
// collapse to one member. An empty member list yields a ring whose
// Owner is always "".
func New(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(members))
	uniq := make([]string, 0, len(members))
	for _, m := range members {
		if !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	sort.Strings(uniq)
	r := &Ring{
		members: uniq,
		points:  make([]point, 0, len(uniq)*vnodes),
	}
	for _, m := range uniq {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, point{hash: hash64(fmt.Sprintf("%s\x00%d", m, i)), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by name so every process
		// sorts identically.
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Members returns the sorted member names.
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// Owner returns the member owning key: the first ring point at or
// after the key's hash, wrapping around. Empty ring returns "".
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer. FNV-1a alone avalanches poorly on
// the short, similar strings ring points are built from (member name +
// small index), which skews arc lengths badly — a 4-member ring
// measured 61%/6% member shares without it. The finalizer decorrelates
// the low entropy into uniform ring positions; it is fixed forever,
// since changing it would remap every key in a deployed fleet.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
