package shard

import (
	"fmt"
	"testing"
)

func TestOwnerIsDeterministicAndMemberOrderInsensitive(t *testing.T) {
	a := New([]string{"alpha", "beta", "gamma"}, 0)
	b := New([]string{"gamma", "alpha", "beta", "alpha"}, 0) // shuffled + dup
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %q: owner differs with member order (%q vs %q)",
				key, a.Owner(key), b.Owner(key))
		}
	}
	// Rebuilding the identical ring agrees point for point: the
	// cross-process determinism the fleet depends on.
	c := New([]string{"alpha", "beta", "gamma"}, 0)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("other-%d", i)
		if a.Owner(key) != c.Owner(key) {
			t.Fatalf("key %q: owner not deterministic across ring builds", key)
		}
	}
}

func TestDistributionIsRoughlyBalanced(t *testing.T) {
	r := New([]string{"a", "b", "c", "d"}, 0)
	counts := map[string]int{}
	const n = 40000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for m, c := range counts {
		share := float64(c) / n
		if share < 0.10 || share > 0.45 {
			t.Fatalf("member %s owns %.1f%% of keys — ring badly unbalanced: %v",
				m, 100*share, counts)
		}
	}
}

// TestRemovalMovesOnlyTheRemovedMembersKeys: consistent hashing's
// defining property — keys owned by surviving members must not move
// when another member leaves.
func TestRemovalMovesOnlyTheRemovedMembersKeys(t *testing.T) {
	full := New([]string{"a", "b", "c", "d"}, 0)
	without := New([]string{"a", "b", "c"}, 0)
	moved := 0
	const n = 10000
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%d", i)
		was, is := full.Owner(key), without.Owner(key)
		if was != "d" && was != is {
			t.Fatalf("key %q moved from surviving member %q to %q", key, was, is)
		}
		if was == "d" {
			moved++
		}
	}
	if moved == 0 || moved > n/2 {
		t.Fatalf("%d/%d keys owned by the removed member — implausible", moved, n)
	}
}

func TestDegenerateRings(t *testing.T) {
	if got := New(nil, 0).Owner("x"); got != "" {
		t.Fatalf("empty ring owner %q, want \"\"", got)
	}
	solo := New([]string{"only"}, 0)
	for i := 0; i < 100; i++ {
		if got := solo.Owner(fmt.Sprintf("k%d", i)); got != "only" {
			t.Fatalf("single-member ring returned %q", got)
		}
	}
	if got := New([]string{"x"}, 1).Owner("wrap-around-check"); got != "x" {
		t.Fatalf("1-vnode ring returned %q", got)
	}
}
