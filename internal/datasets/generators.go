// Package datasets provides deterministic synthetic graph generators
// and stand-ins for the paper's Table I datasets.
//
// The paper evaluates on SNAP downloads (GrQc, Wikivote, Wikipedia,
// PPI, Cit-Patent, Amazon, Astro, DBLP). Those files are not available
// offline, so each dataset is replaced by a generator matched to the
// original's structural family — collaboration networks are overlapping
// coauthor cliques, link/vote/citation networks are preferential
// attachment (heavy-tailed, deep k-cores), co-purchase networks are
// planted communities — at the original (or scaled) node/edge counts.
// The scalar-tree pipeline consumes only topology and scalar values,
// so these families exercise the same code paths and produce the same
// qualitative terrain shapes the paper reports (one dominant core for
// vote/link graphs, several separated dense cores for collaboration
// graphs).
package datasets

import (
	"math"
	"math/rand"

	"repro/internal/graph"
)

// ErdosRenyi generates G(n, m): n vertices, m uniformly random edges
// (after dedup the realized count can be slightly lower).
func ErdosRenyi(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	return b.Build()
}

// BarabasiAlbert generates a preferential-attachment graph: vertices
// arrive one at a time and connect to mPerNode existing vertices with
// probability proportional to degree, yielding the heavy-tailed degree
// distribution of web/citation/vote networks.
func BarabasiAlbert(n, mPerNode int, seed int64) *graph.Graph {
	if mPerNode < 1 {
		mPerNode = 1
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	// targets is the repeated-endpoint list: sampling uniformly from it
	// realizes degree-proportional selection.
	targets := make([]int32, 0, 2*n*mPerNode)
	seedSize := mPerNode + 1
	if seedSize > n {
		seedSize = n
	}
	for i := 0; i < seedSize; i++ {
		for j := i + 1; j < seedSize; j++ {
			b.AddEdge(int32(i), int32(j))
			targets = append(targets, int32(i), int32(j))
		}
	}
	for v := seedSize; v < n; v++ {
		added := map[int32]bool{}
		for len(added) < mPerNode {
			u := targets[rng.Intn(len(targets))]
			if u == int32(v) || added[u] {
				continue
			}
			added[u] = true
			b.AddEdge(int32(v), u)
			targets = append(targets, int32(v), u)
		}
	}
	return b.Build()
}

// BarabasiAlbertVarM is preferential attachment with a per-vertex
// attachment count drawn uniformly from [1, 2·meanM], so core numbers
// spread over a range instead of collapsing to a single value (pure BA
// with constant m gives every vertex core number m, which would make
// the k-core terrain a single plateau). The early seed vertices form a
// denser clique, giving the single dominant core the paper observes in
// vote/link networks.
func BarabasiAlbertVarM(n, meanM int, seed int64) *graph.Graph {
	if meanM < 1 {
		meanM = 1
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	targets := make([]int32, 0, 2*n*meanM)
	seedSize := 2*meanM + 2
	if seedSize > n {
		seedSize = n
	}
	for i := 0; i < seedSize; i++ {
		for j := i + 1; j < seedSize; j++ {
			b.AddEdge(int32(i), int32(j))
			targets = append(targets, int32(i), int32(j))
		}
	}
	for v := seedSize; v < n; v++ {
		m := 1 + rng.Intn(2*meanM)
		added := map[int32]bool{}
		for len(added) < m && len(added) < v {
			u := targets[rng.Intn(len(targets))]
			if u == int32(v) || added[u] {
				continue
			}
			added[u] = true
			b.AddEdge(int32(v), u)
			targets = append(targets, int32(v), u)
		}
	}
	return b.Build()
}

// PlantedPartition generates communities*size vertices in equally
// sized communities, with edge probability pIn inside a community and
// pOut across. Truth labels are returned for evaluation.
//
// Cross-community sampling is done by count rather than all-pairs, so
// large sparse instances stay O(edges).
func PlantedPartition(communities, size int, pIn, pOut float64, seed int64) (*graph.Graph, []int) {
	rng := rand.New(rand.NewSource(seed))
	n := communities * size
	truth := make([]int, n)
	for v := range truth {
		truth[v] = v / size
	}
	b := graph.NewBuilder(n)
	// Intra-community: all pairs within each (small) community.
	for c := 0; c < communities; c++ {
		base := c * size
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				if rng.Float64() < pIn {
					b.AddEdge(int32(base+i), int32(base+j))
				}
			}
		}
	}
	// Inter-community: sample the expected number of cross edges.
	crossPairs := float64(n)*float64(n-size)/2 - 0 // approx n(n-size)/2 pairs
	expected := int(pOut * crossPairs)
	for i := 0; i < expected; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if truth[u] != truth[v] {
			b.AddEdge(int32(u), int32(v))
		}
	}
	return b.Build(), truth
}

// RMAT generates a recursive-matrix (Kronecker-like) graph with 2^scale
// vertices and the requested number of edges, using partition
// probabilities a, b, c (d = 1-a-b-c). RMAT reproduces the skewed,
// community-less structure of web-scale link graphs and is the
// standard synthetic stand-in for them.
func RMAT(scale int, edges int, a, b, c float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 1 << scale
	bld := graph.NewBuilder(n)
	for i := 0; i < edges; i++ {
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < a: // top-left
			case r < a+b: // top-right
				v |= 1 << bit
			case r < a+b+c: // bottom-left
				u |= 1 << bit
			default: // bottom-right
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		bld.AddEdge(int32(u), int32(v))
	}
	return bld.Build()
}

// Collaboration generates a coauthorship-style network: papers with
// power-law-ish author counts draw authors from a community-structured
// population with preferential author popularity, and each paper
// contributes a clique among its authors. Every community is further
// split into two or three subgroups (the "geographic groups" of the
// paper's Figure 8); most papers stay inside one subgroup, a few span
// subgroups of the same community, and a few cross communities. Each
// subgroup contains a tightly collaborating "prolific group" — a
// recurring set of ~10 coauthors — which plants a dense k-core.
//
// This matches the structure the paper relies on for GrQc/Astro/DBLP:
// many medium-density cliques, several disconnected dense cores, high
// clustering (versus the single dominant core of vote networks), and
// communities whose terrain peaks contain separate sub-peaks.
func Collaboration(authors, papers int, communities int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(authors)
	if authors == 0 {
		return b.Build()
	}
	if communities < 1 {
		communities = 1
	}
	comm := make([]int, authors)
	for a := range comm {
		comm[a] = a * communities / authors
	}
	// Subgroups: 2 or 3 per community, deterministic by community ID.
	// pools[c][s] lists the authors of community c, subgroup s, with
	// preferential duplicates appended as authors publish.
	pools := make([][][]int32, communities)
	subgroupOf := make([]int, authors)
	for c := range pools {
		pools[c] = make([][]int32, 2+c%2)
	}
	for a := 0; a < authors; a++ {
		c := comm[a]
		s := a % len(pools[c])
		subgroupOf[a] = s
		pools[c][s] = append(pools[c][s], int32(a))
	}
	// Plant the prolific group of each subgroup: a clique over its
	// first ~10 authors (the paper's "several disconnected dense
	// K-Cores" in collaboration networks).
	for c := range pools {
		for _, group := range pools[c] {
			size := 10
			if size > len(group) {
				size = len(group)
			}
			for i := 0; i < size; i++ {
				for j := i + 1; j < size; j++ {
					b.AddEdge(group[i], group[j])
				}
			}
		}
	}
	for p := 0; p < papers; p++ {
		// Author count: 2 + geometric tail, capped.
		k := 2
		for rng.Float64() < 0.35 && k < 9 {
			k++
		}
		c := rng.Intn(communities)
		s := rng.Intn(len(pools[c]))
		pool := pools[c][s]
		// 8% of papers span subgroups of the same community; 5% cross
		// communities entirely.
		r := rng.Float64()
		crossSub, crossComm := r < 0.08, r >= 0.08 && r < 0.13
		coauthors := make([]int32, 0, k)
		seen := map[int32]bool{}
		// The pool holds preferential duplicates, so distinct authors
		// can run out before k is reached; a bounded number of draw
		// attempts keeps generation total.
		for tries := 0; len(coauthors) < k && tries < 8*k; tries++ {
			var a int32
			switch {
			case crossComm && len(coauthors) == k-1:
				a = int32(rng.Intn(authors))
			case crossSub && len(coauthors) == k-1:
				other := pools[c][rng.Intn(len(pools[c]))]
				a = other[rng.Intn(len(other))]
			default:
				a = pool[rng.Intn(len(pool))]
			}
			if seen[a] {
				continue
			}
			seen[a] = true
			coauthors = append(coauthors, a)
		}
		for i := 0; i < len(coauthors); i++ {
			for j := i + 1; j < len(coauthors); j++ {
				b.AddEdge(coauthors[i], coauthors[j])
			}
		}
		// Preferential growth: coauthors of this paper get likelier to
		// appear again (append duplicates into their subgroup pool).
		for _, a := range coauthors {
			pools[comm[a]][subgroupOf[a]] = append(pools[comm[a]][subgroupOf[a]], a)
		}
	}
	return b.Build()
}

// TriadicBA generates a preferential-attachment graph with triadic
// closure: each new vertex attaches preferentially, then with
// probability closure links to a random neighbor-of-neighbor. The
// closure step adds the triangles PA lacks, matching protein-
// interaction-like networks (PPI) with moderate clustering and a
// single dominant core.
func TriadicBA(n, mPerNode int, closure float64, seed int64) *graph.Graph {
	base := BarabasiAlbertVarM(n, mPerNode, seed)
	rng := rand.New(rand.NewSource(seed + 777))
	b := graph.NewBuilder(n)
	for _, e := range base.Edges() {
		b.AddEdge(e.U, e.V)
	}
	for v := int32(0); v < int32(n); v++ {
		if rng.Float64() >= closure {
			continue
		}
		nbrs := base.Neighbors(v)
		if len(nbrs) == 0 {
			continue
		}
		u := nbrs[rng.Intn(len(nbrs))]
		nn := base.Neighbors(u)
		if len(nn) == 0 {
			continue
		}
		w := nn[rng.Intn(len(nn))]
		if w != v {
			b.AddEdge(v, w)
		}
	}
	return b.Build()
}

// scaleCount scales a Table I size by factor, clamping to a floor that
// keeps the structure meaningful.
func scaleCount(n int, factor float64, floor int) int {
	s := int(math.Round(float64(n) * factor))
	if s < floor {
		s = floor
	}
	return s
}
