package datasets

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/measures"
)

func TestErdosRenyiSize(t *testing.T) {
	g := ErdosRenyi(100, 300, 1)
	if g.NumVertices() != 100 {
		t.Fatalf("V = %d", g.NumVertices())
	}
	// Dedup and self-loop removal shave a few edges off.
	if g.NumEdges() < 250 || g.NumEdges() > 300 {
		t.Errorf("E = %d, want ~300", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBarabasiAlbertSizeAndSkew(t *testing.T) {
	g := BarabasiAlbert(500, 3, 2)
	if g.NumVertices() != 500 {
		t.Fatalf("V = %d", g.NumVertices())
	}
	// ~3 edges per arriving vertex.
	if g.NumEdges() < 3*490 || g.NumEdges() > 3*500+10 {
		t.Errorf("E = %d, want ~%d", g.NumEdges(), 3*500)
	}
	// Degree distribution must be skewed: max degree far above mean.
	mean := 2 * float64(g.NumEdges()) / 500
	if float64(g.MaxDegree()) < 4*mean {
		t.Errorf("max degree %d not heavy-tailed (mean %.1f)", g.MaxDegree(), mean)
	}
}

func TestBarabasiAlbertConnected(t *testing.T) {
	g := BarabasiAlbert(200, 2, 3)
	_, count := graph.ConnectedComponents(g)
	if count != 1 {
		t.Errorf("BA graph has %d components, want 1", count)
	}
}

func TestPlantedPartitionCommunityDensity(t *testing.T) {
	g, truth := PlantedPartition(4, 25, 0.5, 0.002, 4)
	if g.NumVertices() != 100 {
		t.Fatalf("V = %d", g.NumVertices())
	}
	intra, inter := 0, 0
	for _, e := range g.Edges() {
		if truth[e.U] == truth[e.V] {
			intra++
		} else {
			inter++
		}
	}
	if intra <= 5*inter {
		t.Errorf("intra=%d inter=%d: communities not dense enough", intra, inter)
	}
}

func TestRMATSizeAndSkew(t *testing.T) {
	g := RMAT(10, 4000, 0.57, 0.19, 0.19, 5)
	if g.NumVertices() != 1024 {
		t.Fatalf("V = %d, want 1024", g.NumVertices())
	}
	if g.NumEdges() < 2000 {
		t.Errorf("E = %d after dedup, want > 2000", g.NumEdges())
	}
	mean := 2 * float64(g.NumEdges()) / 1024
	if float64(g.MaxDegree()) < 4*mean {
		t.Errorf("RMAT max degree %d not skewed (mean %.1f)", g.MaxDegree(), mean)
	}
}

func TestCollaborationClustering(t *testing.T) {
	g := Collaboration(400, 600, 6, 6)
	if g.NumVertices() != 400 {
		t.Fatalf("V = %d", g.NumVertices())
	}
	// Coauthorship cliques give high clustering relative to ER.
	cc := measures.ClusteringCoefficients(g)
	var mean float64
	cnt := 0
	for v, c := range cc {
		if g.Degree(int32(v)) >= 2 {
			mean += c
			cnt++
		}
	}
	mean /= float64(cnt)
	if mean < 0.3 {
		t.Errorf("collaboration mean clustering = %.3f, want >= 0.3", mean)
	}
}

func TestTriadicBAHasTriangles(t *testing.T) {
	plain := BarabasiAlbert(300, 2, 7)
	closed := TriadicBA(300, 2, 0.9, 7)
	if measures.TotalTriangles(closed) <= measures.TotalTriangles(plain) {
		t.Errorf("triadic closure should add triangles: %d vs %d",
			measures.TotalTriangles(closed), measures.TotalTriangles(plain))
	}
}

func TestLookup(t *testing.T) {
	s, err := Lookup("GrQc")
	if err != nil {
		t.Fatal(err)
	}
	if s.Nodes != 5242 || s.Edges != 14496 {
		t.Errorf("GrQc spec = %+v", s)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("want error for unknown dataset")
	}
}

func TestTableISpecsMatchPaper(t *testing.T) {
	want := map[string][2]int{
		"GrQc":       {5242, 14496},
		"Wikivote":   {7115, 103689},
		"Wikipedia":  {1815914, 34022831},
		"PPI":        {4741, 15147},
		"Cit-Patent": {3774768, 16518947},
		"Amazon":     {334863, 925872},
		"Astro":      {17903, 196972},
		"DBLP":       {27199, 66832},
	}
	if len(TableI) != len(want) {
		t.Fatalf("TableI has %d entries, want %d", len(TableI), len(want))
	}
	for _, s := range TableI {
		w, ok := want[s.Name]
		if !ok {
			t.Errorf("unexpected dataset %q", s.Name)
			continue
		}
		if s.Nodes != w[0] || s.Edges != w[1] {
			t.Errorf("%s: %d/%d, want %d/%d", s.Name, s.Nodes, s.Edges, w[0], w[1])
		}
	}
}

func TestGenerateScaledSizes(t *testing.T) {
	for _, name := range []string{"GrQc", "Wikivote", "PPI", "Amazon", "DBLP"} {
		g, err := Generate(name, 0.1, 1)
		if err != nil {
			t.Fatal(err)
		}
		spec, _ := Lookup(name)
		wantN := int(float64(spec.Nodes) * 0.1)
		if g.NumVertices() < wantN/2 || g.NumVertices() > wantN*2 {
			t.Errorf("%s at 0.1 scale: V = %d, want ~%d", name, g.NumVertices(), wantN)
		}
		if g.NumEdges() == 0 {
			t.Errorf("%s: no edges", name)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestGenerateUnknown(t *testing.T) {
	if _, err := Generate("missing", 1, 1); err == nil {
		t.Error("want error for unknown dataset")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate("GrQc", 0.05, 9)
	b, _ := Generate("GrQc", 0.05, 9)
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	for i, e := range a.Edges() {
		if b.Edges()[i] != e {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestCollaborationVsPreferentialCoreStructure(t *testing.T) {
	// The paper's key qualitative contrast (Figure 6): collaboration
	// networks (GrQc) have several disconnected dense k-cores, while
	// vote networks (Wikivote) have one dominant core. Check the
	// stand-ins reproduce it: count components of the near-top core
	// subgraph.
	grqc, _ := Generate("GrQc", 0.1, 11)
	wiki, _ := Generate("Wikivote", 0.1, 11)

	countTopCoreComponents := func(g *graph.Graph) int {
		core := measures.CoreNumbers(g)
		maxCore := int32(0)
		for _, c := range core {
			if c > maxCore {
				maxCore = c
			}
		}
		// Near-top threshold: within 80% of max.
		thresh := int32(math.Ceil(float64(maxCore) * 0.8))
		var members []int32
		for v, c := range core {
			if c >= thresh {
				members = append(members, int32(v))
			}
		}
		sub, _ := graph.InducedSubgraph(g, members)
		_, count := graph.ConnectedComponents(sub)
		return count
	}
	if got := countTopCoreComponents(grqc); got < 2 {
		t.Errorf("GrQc stand-in has %d near-top-core components, want >= 2", got)
	}
	if got := countTopCoreComponents(wiki); got != 1 {
		t.Errorf("Wikivote stand-in has %d near-top-core components, want 1", got)
	}
}

func TestScaleCountFloor(t *testing.T) {
	if got := scaleCount(1000, 0.001, 200); got != 200 {
		t.Errorf("scaleCount floor: %d, want 200", got)
	}
	if got := scaleCount(1000, 0.5, 10); got != 500 {
		t.Errorf("scaleCount: %d, want 500", got)
	}
}

func TestGenerateRMATFamily(t *testing.T) {
	g, err := Generate("rmat10", 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1<<10 {
		t.Fatalf("rmat10 has %d vertices, want %d", g.NumVertices(), 1<<10)
	}
	if g.NumEdges() == 0 {
		t.Fatal("rmat10 generated no edges")
	}
	again, err := Generate("rmat10", 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != again.NumEdges() {
		t.Fatal("rmat generation is not deterministic per seed")
	}
	for _, bad := range []string{"rmat", "rmat0", "rmat28", "rmatx"} {
		if _, err := Generate(bad, 1, 7); err == nil {
			t.Fatalf("Generate(%q) accepted an invalid rmat name", bad)
		}
	}
}
