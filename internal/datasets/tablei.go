package datasets

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

import "repro/internal/graph"

// Kind is the structural family a Table I dataset belongs to; it
// selects which generator produces its stand-in.
type Kind int

// The structural families of the paper's datasets.
const (
	// KindCollaboration: coauthorship networks (GrQc, Astro, DBLP) —
	// overlapping cliques, several disconnected dense cores.
	KindCollaboration Kind = iota
	// KindPreferential: vote/link/citation networks (Wikivote,
	// Wikipedia, Cit-Patent) — heavy-tailed, one dominant core.
	KindPreferential
	// KindBiological: protein interaction (PPI) — preferential with
	// triadic closure.
	KindBiological
	// KindCoPurchase: product co-purchase (Amazon) — many planted
	// communities.
	KindCoPurchase
)

// Spec describes one Table I dataset: its published size and the
// generator family of its synthetic stand-in.
type Spec struct {
	Name    string
	Nodes   int
	Edges   int
	Context string
	Kind    Kind
	// Communities used by the collaboration/co-purchase generators.
	Communities int
}

// TableI mirrors the paper's Table I.
var TableI = []Spec{
	{"GrQc", 5242, 14496, "Coauthorship in General Relativity and Quantum Cosmology", KindCollaboration, 12},
	{"Wikivote", 7115, 103689, "Who-votes-on-whom relationship between Wikipedia users", KindPreferential, 0},
	{"Wikipedia", 1815914, 34022831, "Links between Wikipedia pages", KindPreferential, 0},
	{"PPI", 4741, 15147, "Protein Protein Interaction network", KindBiological, 0},
	{"Cit-Patent", 3774768, 16518947, "Citations made by patents granted between 1975 and 1999", KindPreferential, 0},
	{"Amazon", 334863, 925872, "Co-Purchase relationship between products in Amazon", KindCoPurchase, 400},
	{"Astro", 17903, 196972, "Coauthorship between authors in Astro Physics", KindCollaboration, 20},
	{"DBLP", 27199, 66832, "Coauthorship between authors in (Database, Data Mining, Machine Learning, Information Retrieval)", KindCollaboration, 4},
}

// Lookup returns the Spec with the given name.
func Lookup(name string) (Spec, error) {
	for _, s := range TableI {
		if s.Name == name {
			return s, nil
		}
	}
	names := make([]string, len(TableI))
	for i, s := range TableI {
		names[i] = s.Name
	}
	sort.Strings(names)
	return Spec{}, fmt.Errorf("datasets: unknown dataset %q (have %v)", name, names)
}

// Generate builds the synthetic stand-in for the named Table I dataset
// at the given scale factor: 1.0 = published size, smaller factors
// shrink node counts proportionally (floored at 200 vertices, which is
// what tests and examples use to stay fast), and factors above 1 grow
// the stand-in beyond the published size — the configuration the
// checked-in perf trajectories use to stress the traversal engines.
//
// Beyond Table I, Generate accepts the dynamic "rmat<k>" family
// (k = 1..27): a recursive-matrix graph over 2^k vertices with
// 16·2^k edge samples at the Graph500 parameters, the edge count
// scaled by the scale factor. rmat20 and up produce arenas of
// hundreds of megabytes — the sizes where the copy-vs-mmap gap of the
// disk store's cold-hit path (and the partition budget's locality win
// over mapped arenas) becomes visible, without shipping any dataset
// file.
func Generate(name string, scale float64, seed int64) (*graph.Graph, error) {
	if k, ok := rmatScale(name); ok {
		edges := scaleCount(16<<k, scale, 400)
		return RMAT(k, edges, 0.57, 0.19, 0.19, seed), nil
	}
	spec, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	return GenerateSpec(spec, scale, seed), nil
}

// rmatScale parses a dynamic "rmat<k>" dataset name, reporting the
// log2 vertex count and whether the name is a member of the family.
func rmatScale(name string) (int, bool) {
	s, ok := strings.CutPrefix(name, "rmat")
	if !ok {
		return 0, false
	}
	k, err := strconv.Atoi(s)
	if err != nil || k < 1 || k > 27 {
		return 0, false
	}
	return k, true
}

// GenerateSpec builds the stand-in for an arbitrary Spec.
func GenerateSpec(spec Spec, scale float64, seed int64) *graph.Graph {
	if scale <= 0 {
		scale = 1
	}
	n := scaleCount(spec.Nodes, scale, 200)
	m := scaleCount(spec.Edges, scale, 400)
	switch spec.Kind {
	case KindCollaboration:
		// Papers tuned so clique edges land near the edge target:
		// mean clique size ~3 → ~3 edges/paper before dedup.
		papers := m / 3
		comms := spec.Communities
		if comms <= 0 {
			comms = 8
		}
		return Collaboration(n, papers, comms, seed)
	case KindPreferential:
		per := m / n
		if per < 1 {
			per = 1
		}
		return BarabasiAlbertVarM(n, per, seed)
	case KindBiological:
		per := m / n
		if per < 1 {
			per = 1
		}
		return TriadicBA(n, per, 0.6, seed)
	case KindCoPurchase:
		comms := spec.Communities
		if comms <= 0 {
			comms = 100
		}
		// Keep community size fixed-ish; derive count from n.
		size := n / comms
		if size < 4 {
			size = 4
			comms = n / size
		}
		pIn := 2 * float64(m) / (float64(comms) * float64(size) * float64(size-1))
		if pIn > 1 {
			pIn = 1
		}
		g, _ := PlantedPartition(comms, size, pIn, 0.2/float64(n), seed)
		return g
	}
	return ErdosRenyi(n, m, seed)
}
