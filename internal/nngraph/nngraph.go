// Package nngraph builds nearest-neighbor graphs over tabular rows,
// the substrate of the paper's query-result visualization (Section
// III-D): the output of a SQL query is modeled as a table of numeric
// attributes, rows become vertices, and edges connect rows whose
// attribute vectors are close. Any column then serves as a scalar
// field over the graph, and a categorical column (plant genus in the
// paper) colors the terrain.
package nngraph

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// Table is a numeric table with an optional categorical label per row.
type Table struct {
	// Attributes names the columns.
	Attributes []string
	// Rows holds one numeric vector per row; all rows must have
	// len(Attributes) values.
	Rows [][]float64
	// Labels optionally holds a category per row (e.g. plant genus).
	Labels []int
	// LabelNames optionally names the categories.
	LabelNames []string
}

// Validate checks table shape invariants.
func (t *Table) Validate() error {
	for i, r := range t.Rows {
		if len(r) != len(t.Attributes) {
			return fmt.Errorf("nngraph: row %d has %d values for %d attributes",
				i, len(r), len(t.Attributes))
		}
	}
	if t.Labels != nil && len(t.Labels) != len(t.Rows) {
		return fmt.Errorf("nngraph: %d labels for %d rows", len(t.Labels), len(t.Rows))
	}
	return nil
}

// Column returns column a as a scalar field over the rows.
func (t *Table) Column(a int) []float64 {
	out := make([]float64, len(t.Rows))
	for i, r := range t.Rows {
		out[i] = r[a]
	}
	return out
}

// Options configures NN-graph construction.
type Options struct {
	// K neighbors per row. Default 5.
	K int
	// MaxDistance prunes edges longer than this (0 = no pruning); this
	// is the paper's expert-specified distance threshold.
	MaxDistance float64
	// Normalize z-scores each attribute before measuring distance, so
	// differently scaled attributes contribute comparably. Default off.
	Normalize bool
}

// Build constructs the k-nearest-neighbor graph of the table under
// Euclidean distance: each row connects to its K nearest rows (within
// MaxDistance if set). The graph is undirected, so vertex degree can
// exceed K. Brute-force O(n²) distances — query results are small.
func Build(t *Table, opts Options) (*graph.Graph, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if opts.K <= 0 {
		opts.K = 5
	}
	n := len(t.Rows)
	rows := t.Rows
	if opts.Normalize {
		rows = zscore(t.Rows, len(t.Attributes))
	}
	b := graph.NewBuilder(n)
	type cand struct {
		j int32
		d float64
	}
	cands := make([]cand, 0, n)
	for i := 0; i < n; i++ {
		cands = cands[:0]
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			d := euclid(rows[i], rows[j])
			if opts.MaxDistance > 0 && d > opts.MaxDistance {
				continue
			}
			cands = append(cands, cand{int32(j), d})
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].d != cands[b].d {
				return cands[a].d < cands[b].d
			}
			return cands[a].j < cands[b].j
		})
		k := opts.K
		if k > len(cands) {
			k = len(cands)
		}
		for _, c := range cands[:k] {
			b.AddEdge(int32(i), c.j)
		}
	}
	return b.Build(), nil
}

func euclid(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func zscore(rows [][]float64, cols int) [][]float64 {
	n := len(rows)
	mean := make([]float64, cols)
	std := make([]float64, cols)
	for _, r := range rows {
		for c, v := range r {
			mean[c] += v
		}
	}
	for c := range mean {
		mean[c] /= float64(n)
	}
	for _, r := range rows {
		for c, v := range r {
			d := v - mean[c]
			std[c] += d * d
		}
	}
	for c := range std {
		std[c] = math.Sqrt(std[c] / float64(n))
		if std[c] == 0 {
			std[c] = 1
		}
	}
	out := make([][]float64, n)
	for i, r := range rows {
		out[i] = make([]float64, cols)
		for c, v := range r {
			out[i][c] = (v - mean[c]) / std[c]
		}
	}
	return out
}

// PlantTable generates the synthetic stand-in for the paper's plant-
// genus query result: rowsPerGenus rows for each of three genus
// (labeled 0=red, 1=green, 2=blue to match Figure 11's colors), with
// five numeric attributes. Attribute 0 ("attribute 1" in the paper)
// separates the genus strongly; attribute 1 separates them weakly —
// reproducing the paper's observation that attribute 1 demonstrates
// greater genus separability. The red genus sits inside the green
// genus in attribute space (more central, contained), and blue is far
// from both.
func PlantTable(rowsPerGenus int, seed int64) *Table {
	rng := rand.New(rand.NewSource(seed))
	attrs := []string{"attr1", "attr2", "attr3", "attr4", "attr5"}
	// Genus means per attribute.
	means := [3][5]float64{
		{5.0, 4.8, 2, 3, 1}, // red: inside green's region
		{5.5, 5.0, 2, 3, 1}, // green: overlaps red
		{12., 5.6, 2, 3, 1}, // blue: far along attr1, mildly along attr2
	}
	// Red is tighter than green (contained); blue is its own cluster.
	stds := [3]float64{0.35, 0.9, 0.6}
	t := &Table{
		Attributes: attrs,
		LabelNames: []string{"red-genus", "green-genus", "blue-genus"},
	}
	for g := 0; g < 3; g++ {
		for i := 0; i < rowsPerGenus; i++ {
			row := make([]float64, 5)
			for a := 0; a < 5; a++ {
				row[a] = means[g][a] + stds[g]*rng.NormFloat64()
			}
			t.Rows = append(t.Rows, row)
			t.Labels = append(t.Labels, g)
		}
	}
	return t
}
