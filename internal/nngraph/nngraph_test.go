package nngraph

import (
	"testing"

	"repro/internal/graph"
)

func TestValidateShape(t *testing.T) {
	bad := &Table{Attributes: []string{"a", "b"}, Rows: [][]float64{{1}}}
	if bad.Validate() == nil {
		t.Error("want error for ragged rows")
	}
	bad2 := &Table{Attributes: []string{"a"}, Rows: [][]float64{{1}}, Labels: []int{0, 1}}
	if bad2.Validate() == nil {
		t.Error("want error for label/row mismatch")
	}
}

func TestColumn(t *testing.T) {
	tab := &Table{Attributes: []string{"a", "b"}, Rows: [][]float64{{1, 2}, {3, 4}}}
	col := tab.Column(1)
	if col[0] != 2 || col[1] != 4 {
		t.Errorf("Column(1) = %v", col)
	}
}

func TestBuildConnectsNearest(t *testing.T) {
	// Three collinear points: middle is nearest to both ends.
	tab := &Table{
		Attributes: []string{"x"},
		Rows:       [][]float64{{0}, {1}, {10}},
	}
	g, err := Build(tab, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) {
		t.Error("0 and 1 are mutual nearest neighbors; edge missing")
	}
	if g.HasEdge(0, 2) {
		t.Error("0 and 2 are far apart; unexpected edge")
	}
	// 2's nearest is 1, so (1,2) exists even though 2 is not 1's nearest.
	if !g.HasEdge(1, 2) {
		t.Error("edge (1,2) from 2's NN list missing")
	}
}

func TestBuildMaxDistancePrunes(t *testing.T) {
	tab := &Table{
		Attributes: []string{"x"},
		Rows:       [][]float64{{0}, {1}, {10}},
	}
	g, err := Build(tab, Options{K: 2, MaxDistance: 2})
	if err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(1, 2) || g.HasEdge(0, 2) {
		t.Error("edges beyond MaxDistance must be pruned")
	}
	if !g.HasEdge(0, 1) {
		t.Error("near edge wrongly pruned")
	}
}

func TestBuildSeparatesClusters(t *testing.T) {
	tab := PlantTable(30, 1)
	g, err := Build(tab, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Blue genus (label 2) is far from red/green: no NN edges should
	// cross from blue to the others.
	cross := 0
	for _, e := range g.Edges() {
		lu, lv := tab.Labels[e.U], tab.Labels[e.V]
		if (lu == 2) != (lv == 2) {
			cross++
		}
	}
	if cross > 0 {
		t.Errorf("%d NN edges cross into the well-separated blue genus", cross)
	}
	// Red (0) and green (1) overlap: expect at least some cross edges.
	redGreen := 0
	for _, e := range g.Edges() {
		lu, lv := tab.Labels[e.U], tab.Labels[e.V]
		if lu != lv && lu != 2 && lv != 2 {
			redGreen++
		}
	}
	if redGreen == 0 {
		t.Error("red and green genus should interleave in the NN graph")
	}
}

func TestBuildNormalize(t *testing.T) {
	// Attribute with huge scale dominates unless normalized.
	tab := &Table{
		Attributes: []string{"big", "small"},
		Rows: [][]float64{
			{0, 0}, {0, 1}, {1000, 0},
		},
	}
	g, _ := Build(tab, Options{K: 1})
	if !g.HasEdge(0, 1) {
		t.Error("without normalization, rows 0 and 1 are nearest")
	}
	gn, _ := Build(tab, Options{K: 1, Normalize: true})
	if gn.NumEdges() == 0 {
		t.Error("normalized build produced no edges")
	}
}

func TestBuildValidatesTable(t *testing.T) {
	bad := &Table{Attributes: []string{"a", "b"}, Rows: [][]float64{{1}}}
	if _, err := Build(bad, Options{}); err == nil {
		t.Error("Build must reject invalid tables")
	}
}

func TestBuildDeterministic(t *testing.T) {
	tab := PlantTable(20, 5)
	a, _ := Build(tab, Options{K: 3})
	b, _ := Build(tab, Options{K: 3})
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("nondeterministic NN graph")
	}
}

func TestPlantTableShape(t *testing.T) {
	tab := PlantTable(25, 2)
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 75 {
		t.Fatalf("rows = %d, want 75", len(tab.Rows))
	}
	if len(tab.Attributes) != 5 {
		t.Fatalf("attributes = %d, want 5", len(tab.Attributes))
	}
	counts := map[int]int{}
	for _, l := range tab.Labels {
		counts[l]++
	}
	for g := 0; g < 3; g++ {
		if counts[g] != 25 {
			t.Errorf("genus %d has %d rows, want 25", g, counts[g])
		}
	}
}

func TestPlantTableAttr1MoreSeparable(t *testing.T) {
	// The paper's Figure 11 finding: attribute 1 separates the genus
	// better than attribute 2. Compare between-genus mean spread over
	// within-genus stddev for both columns.
	tab := PlantTable(50, 3)
	sep := func(col int) float64 {
		var mean [3]float64
		var count [3]int
		for i, r := range tab.Rows {
			mean[tab.Labels[i]] += r[col]
			count[tab.Labels[i]]++
		}
		for g := range mean {
			mean[g] /= float64(count[g])
		}
		var within float64
		for i, r := range tab.Rows {
			d := r[col] - mean[tab.Labels[i]]
			within += d * d
		}
		within = within / float64(len(tab.Rows))
		spread := 0.0
		for a := 0; a < 3; a++ {
			for b := a + 1; b < 3; b++ {
				d := mean[a] - mean[b]
				spread += d * d
			}
		}
		return spread / (within + 1e-12)
	}
	if sep(0) <= 2*sep(1) {
		t.Errorf("attr1 separability %.2f not clearly above attr2 %.2f", sep(0), sep(1))
	}
}

func TestEuclid(t *testing.T) {
	if d := euclid([]float64{0, 0}, []float64{3, 4}); d != 5 {
		t.Errorf("euclid = %g, want 5", d)
	}
}

func TestNNGraphUsableAsScalarGraph(t *testing.T) {
	tab := PlantTable(20, 4)
	g, err := Build(tab, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	var _ *graph.Graph = g
	if g.NumVertices() != 60 {
		t.Fatalf("V = %d", g.NumVertices())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}
