package reldb

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// expr is a compiled predicate evaluated against one row of a relation.
type expr interface {
	eval(r *Relation, row int) bool
}

type orExpr struct{ l, r expr }
type andExpr struct{ l, r expr }
type notExpr struct{ e expr }

func (e orExpr) eval(r *Relation, row int) bool  { return e.l.eval(r, row) || e.r.eval(r, row) }
func (e andExpr) eval(r *Relation, row int) bool { return e.l.eval(r, row) && e.r.eval(r, row) }
func (e notExpr) eval(r *Relation, row int) bool { return !e.e.eval(r, row) }

// numCmp compares a numeric column against a constant.
type numCmp struct {
	col int
	op  string
	val float64
}

func (c numCmp) eval(r *Relation, row int) bool {
	v := r.Rows[row][c.col]
	switch c.op {
	case "=":
		return v == c.val
	case "!=":
		return v != c.val
	case "<":
		return v < c.val
	case "<=":
		return v <= c.val
	case ">":
		return v > c.val
	case ">=":
		return v >= c.val
	}
	return false
}

// labelCmp compares the label column against a category index.
type labelCmp struct {
	op  string
	cat int
}

func (c labelCmp) eval(r *Relation, row int) bool {
	switch c.op {
	case "=":
		return r.Labels[row] == c.cat
	case "!=":
		return r.Labels[row] != c.cat
	}
	return false
}

// parsePredicate compiles the WHERE text against the relation's schema
// (column references are resolved at parse time, so unknown names fail
// fast rather than per row).
func parsePredicate(src string, rel *Relation) (expr, error) {
	p := &parser{toks: tokenize(src), rel: rel}
	e, err := p.parseOr()
	if err != nil {
		return nil, fmt.Errorf("reldb: parsing %q: %w", src, err)
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("reldb: parsing %q: trailing input at %q", src, p.toks[p.pos])
	}
	return e, nil
}

type parser struct {
	toks []string
	pos  int
	rel  *Relation
}

func (p *parser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *parser) next() string {
	t := p.peek()
	if t != "" {
		p.pos++
	}
	return t
}

func (p *parser) parseOr() (expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for strings.EqualFold(p.peek(), "or") {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = orExpr{l, r}
	}
	return l, nil
}

func (p *parser) parseAnd() (expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for strings.EqualFold(p.peek(), "and") {
		p.next()
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = andExpr{l, r}
	}
	return l, nil
}

func (p *parser) parseCmp() (expr, error) {
	switch {
	case p.peek() == "(":
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.next() != ")" {
			return nil, fmt.Errorf("missing ')'")
		}
		return e, nil
	case strings.EqualFold(p.peek(), "not"):
		p.next()
		e, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		return notExpr{e}, nil
	}

	col := p.next()
	if col == "" {
		return nil, fmt.Errorf("expected column name")
	}
	op := p.next()
	switch op {
	case "=", "!=", "<", "<=", ">", ">=":
	default:
		return nil, fmt.Errorf("expected comparison operator, got %q", op)
	}
	rhs := p.next()
	if rhs == "" {
		return nil, fmt.Errorf("expected value after %q", op)
	}

	// String literal: label comparison.
	if strings.HasPrefix(rhs, "'") {
		if op != "=" && op != "!=" {
			return nil, fmt.Errorf("labels support only = and !=, got %q", op)
		}
		if p.rel.LabelColumn == "" || !strings.EqualFold(col, p.rel.LabelColumn) {
			return nil, fmt.Errorf("%q is not the label column", col)
		}
		name := strings.Trim(rhs, "'")
		for i, ln := range p.rel.LabelNames {
			if ln == name {
				return labelCmp{op: op, cat: i}, nil
			}
		}
		return nil, fmt.Errorf("unknown label %q", name)
	}

	val, err := strconv.ParseFloat(rhs, 64)
	if err != nil {
		return nil, fmt.Errorf("bad numeric literal %q", rhs)
	}
	// Numeric label comparison (genus = 2) is allowed too.
	if p.rel.LabelColumn != "" && strings.EqualFold(col, p.rel.LabelColumn) {
		if op != "=" && op != "!=" {
			return nil, fmt.Errorf("labels support only = and !=, got %q", op)
		}
		return labelCmp{op: op, cat: int(val)}, nil
	}
	ci := p.rel.columnIndex(col)
	if ci < 0 {
		return nil, fmt.Errorf("unknown column %q", col)
	}
	return numCmp{col: ci, op: op, val: val}, nil
}

// tokenize splits the predicate source into identifiers, numbers,
// quoted strings, parens, and operators.
func tokenize(src string) []string {
	var toks []string
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n':
			i++
		case c == '(' || c == ')':
			toks = append(toks, string(c))
			i++
		case c == '\'':
			j := i + 1
			for j < len(src) && src[j] != '\'' {
				j++
			}
			if j < len(src) {
				j++ // include closing quote
			}
			toks = append(toks, src[i:j])
			i = j
		case c == '!' || c == '<' || c == '>' || c == '=':
			j := i + 1
			if j < len(src) && src[j] == '=' {
				j++
			}
			toks = append(toks, src[i:j])
			i = j
		default:
			j := i
			for j < len(src) && (isIdent(rune(src[j])) || src[j] == '.' || src[j] == '-') {
				j++
			}
			if j == i { // unknown byte: emit as its own token so parsing fails loudly
				j++
			}
			toks = append(toks, src[i:j])
			i = j
		}
	}
	return toks
}

func isIdent(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}
