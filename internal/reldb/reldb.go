// Package reldb is a small in-memory relational layer realizing the
// paper's database vision (Section III-D and the conclusion): "one can
// view the result of a query as an attributed graph". It stores typed
// tables, evaluates SELECT/WHERE/ORDER BY/LIMIT queries with a tiny
// SQL-style predicate language, and materializes results as
// nngraph.Table values ready for NN-graph construction and terrain
// visualization — the full query-to-terrain path the paper sketches on
// the OSU plant-genus dataset.
//
// The predicate grammar is deliberately small but real:
//
//	expr   := or
//	or     := and { OR and }
//	and    := cmp { AND cmp }
//	cmp    := column op number | column op 'string' | '(' expr ')' | NOT cmp
//	op     := = | != | < | <= | > | >=
//
// Column references resolve against numeric columns or the label
// column; string literals compare against label names.
package reldb

import (
	"fmt"
	"sort"

	"repro/internal/nngraph"
)

// Relation is a named table: numeric columns plus an optional
// categorical label column.
type Relation struct {
	Name string
	// Columns names the numeric attributes.
	Columns []string
	// Rows holds one numeric tuple per row.
	Rows [][]float64
	// LabelColumn optionally names the categorical column ("" = none).
	LabelColumn string
	// Labels holds the per-row category index when LabelColumn is set.
	Labels []int
	// LabelNames maps category indices to names.
	LabelNames []string
}

// Validate checks relational shape invariants.
func (r *Relation) Validate() error {
	for i, row := range r.Rows {
		if len(row) != len(r.Columns) {
			return fmt.Errorf("reldb: %s row %d has %d values for %d columns",
				r.Name, i, len(row), len(r.Columns))
		}
	}
	if r.LabelColumn != "" && len(r.Labels) != len(r.Rows) {
		return fmt.Errorf("reldb: %s has %d labels for %d rows", r.Name, len(r.Labels), len(r.Rows))
	}
	return nil
}

// columnIndex resolves a numeric column name, or -1.
func (r *Relation) columnIndex(name string) int {
	for i, c := range r.Columns {
		if c == name {
			return i
		}
	}
	return -1
}

// DB is a collection of named relations.
type DB struct {
	relations map[string]*Relation
}

// NewDB returns an empty database.
func NewDB() *DB { return &DB{relations: map[string]*Relation{}} }

// Create registers a relation, replacing any previous one of the same
// name.
func (db *DB) Create(r *Relation) error {
	if err := r.Validate(); err != nil {
		return err
	}
	if r.Name == "" {
		return fmt.Errorf("reldb: relation needs a name")
	}
	db.relations[r.Name] = r
	return nil
}

// Relation looks up a relation by name.
func (db *DB) Relation(name string) (*Relation, error) {
	r, ok := db.relations[name]
	if !ok {
		return nil, fmt.Errorf("reldb: unknown relation %q", name)
	}
	return r, nil
}

// Query describes a SELECT over one relation.
type Query struct {
	// From names the relation.
	From string
	// Select lists the numeric columns to project; empty selects all.
	Select []string
	// Where is the predicate source text; empty selects every row.
	Where string
	// OrderBy optionally names a projected column to sort ascending
	// by; prefix with '-' for descending.
	OrderBy string
	// Limit > 0 truncates the result.
	Limit int
}

// Run evaluates the query and returns the materialized result as an
// nngraph.Table: projected numeric columns become attributes, the
// label column (if any) rides along for terrain coloring.
func (db *DB) Run(q Query) (*nngraph.Table, error) {
	rel, err := db.Relation(q.From)
	if err != nil {
		return nil, err
	}
	var pred expr
	if q.Where != "" {
		pred, err = parsePredicate(q.Where, rel)
		if err != nil {
			return nil, err
		}
	}
	cols := q.Select
	if len(cols) == 0 {
		cols = rel.Columns
	}
	proj := make([]int, len(cols))
	for i, c := range cols {
		proj[i] = rel.columnIndex(c)
		if proj[i] < 0 {
			return nil, fmt.Errorf("reldb: unknown column %q in SELECT", c)
		}
	}

	var rowIdx []int
	for i := range rel.Rows {
		if pred == nil || pred.eval(rel, i) {
			rowIdx = append(rowIdx, i)
		}
	}

	if q.OrderBy != "" {
		key, desc := q.OrderBy, false
		if key[0] == '-' {
			key, desc = key[1:], true
		}
		k := rel.columnIndex(key)
		if k < 0 {
			return nil, fmt.Errorf("reldb: unknown column %q in ORDER BY", key)
		}
		sort.SliceStable(rowIdx, func(a, b int) bool {
			if desc {
				return rel.Rows[rowIdx[a]][k] > rel.Rows[rowIdx[b]][k]
			}
			return rel.Rows[rowIdx[a]][k] < rel.Rows[rowIdx[b]][k]
		})
	}
	if q.Limit > 0 && len(rowIdx) > q.Limit {
		rowIdx = rowIdx[:q.Limit]
	}

	out := &nngraph.Table{Attributes: cols, LabelNames: rel.LabelNames}
	for _, i := range rowIdx {
		row := make([]float64, len(proj))
		for j, c := range proj {
			row[j] = rel.Rows[i][c]
		}
		out.Rows = append(out.Rows, row)
		if rel.LabelColumn != "" {
			out.Labels = append(out.Labels, rel.Labels[i])
		}
	}
	return out, nil
}
