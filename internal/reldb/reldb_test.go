package reldb

import (
	"reflect"
	"testing"

	"repro/internal/nngraph"
)

func plantRelation() *Relation {
	return &Relation{
		Name:    "plants",
		Columns: []string{"attr1", "attr2", "height"},
		Rows: [][]float64{
			{10, 1.0, 30},
			{12, 1.1, 45},
			{50, 2.0, 20},
			{52, 2.2, 22},
			{90, 0.5, 60},
			{95, 0.4, 65},
		},
		LabelColumn: "genus",
		Labels:      []int{0, 0, 1, 1, 2, 2},
		LabelNames:  []string{"acer", "quercus", "salix"},
	}
}

func mustRun(t *testing.T, db *DB, q Query) *nngraph.Table {
	t.Helper()
	out, err := db.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func newPlantDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	if err := db.Create(plantRelation()); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestSelectAll(t *testing.T) {
	db := newPlantDB(t)
	out := mustRun(t, db, Query{From: "plants"})
	if len(out.Rows) != 6 || len(out.Attributes) != 3 {
		t.Fatalf("SELECT *: %d rows × %d cols", len(out.Rows), len(out.Attributes))
	}
	if !reflect.DeepEqual(out.Labels, []int{0, 0, 1, 1, 2, 2}) {
		t.Fatalf("labels not carried: %v", out.Labels)
	}
}

func TestProjection(t *testing.T) {
	db := newPlantDB(t)
	out := mustRun(t, db, Query{From: "plants", Select: []string{"height", "attr1"}})
	if !reflect.DeepEqual(out.Attributes, []string{"height", "attr1"}) {
		t.Fatalf("attributes %v", out.Attributes)
	}
	if out.Rows[0][0] != 30 || out.Rows[0][1] != 10 {
		t.Fatalf("projection reordered wrong: %v", out.Rows[0])
	}
}

func TestWhereNumeric(t *testing.T) {
	db := newPlantDB(t)
	out := mustRun(t, db, Query{From: "plants", Where: "attr1 >= 50 AND height < 60"})
	if len(out.Rows) != 2 {
		t.Fatalf("rows %d, want 2 (the quercus pair)", len(out.Rows))
	}
	for _, l := range out.Labels {
		if l != 1 {
			t.Fatalf("labels %v, want all quercus", out.Labels)
		}
	}
}

func TestWhereLabelByName(t *testing.T) {
	db := newPlantDB(t)
	out := mustRun(t, db, Query{From: "plants", Where: "genus = 'salix'"})
	if len(out.Rows) != 2 || out.Rows[0][0] != 90 {
		t.Fatalf("salix query: %v", out.Rows)
	}
	out = mustRun(t, db, Query{From: "plants", Where: "genus != 'salix'"})
	if len(out.Rows) != 4 {
		t.Fatalf("negated label: %d rows", len(out.Rows))
	}
}

func TestWhereLabelNumeric(t *testing.T) {
	db := newPlantDB(t)
	out := mustRun(t, db, Query{From: "plants", Where: "genus = 2"})
	if len(out.Rows) != 2 {
		t.Fatalf("genus = 2: %d rows", len(out.Rows))
	}
}

func TestWhereOrParensNot(t *testing.T) {
	db := newPlantDB(t)
	out := mustRun(t, db, Query{From: "plants", Where: "(genus = 'acer' OR genus = 'salix') AND NOT height > 60"})
	// acer rows (30, 45) and the salix row at 60.
	if len(out.Rows) != 3 {
		t.Fatalf("compound predicate: %d rows, want 3", len(out.Rows))
	}
}

func TestOrderByAndLimit(t *testing.T) {
	db := newPlantDB(t)
	out := mustRun(t, db, Query{From: "plants", OrderBy: "-height", Limit: 2})
	if len(out.Rows) != 2 || out.Rows[0][2] != 65 || out.Rows[1][2] != 60 {
		t.Fatalf("ORDER BY -height LIMIT 2: %v", out.Rows)
	}
	out = mustRun(t, db, Query{From: "plants", OrderBy: "height", Limit: 1})
	if out.Rows[0][2] != 20 {
		t.Fatalf("ORDER BY height LIMIT 1: %v", out.Rows)
	}
}

func TestQueryErrors(t *testing.T) {
	db := newPlantDB(t)
	bad := []Query{
		{From: "nope"},
		{From: "plants", Select: []string{"nope"}},
		{From: "plants", Where: "nope > 3"},
		{From: "plants", Where: "attr1 >"},
		{From: "plants", Where: "attr1 > 3 extra"},
		{From: "plants", Where: "attr1 ~ 3"},
		{From: "plants", Where: "(attr1 > 3"},
		{From: "plants", Where: "genus > 'acer'"},
		{From: "plants", Where: "genus = 'unknowngenus'"},
		{From: "plants", Where: "attr1 = abc"},
		{From: "plants", OrderBy: "nope"},
		{From: "plants", Where: "attr1 = 'acer'"},
	}
	for _, q := range bad {
		if _, err := db.Run(q); err == nil {
			t.Fatalf("query %+v should fail", q)
		}
	}
}

func TestCreateValidates(t *testing.T) {
	db := NewDB()
	if err := db.Create(&Relation{Columns: []string{"a"}}); err == nil {
		t.Fatal("unnamed relation should be rejected")
	}
	if err := db.Create(&Relation{Name: "r", Columns: []string{"a"}, Rows: [][]float64{{1, 2}}}); err == nil {
		t.Fatal("ragged relation should be rejected")
	}
	if err := db.Create(&Relation{Name: "r", Columns: []string{"a"},
		Rows: [][]float64{{1}}, LabelColumn: "l", Labels: []int{0, 1}}); err == nil {
		t.Fatal("label length mismatch should be rejected")
	}
}

func TestQueryToNNGraphPipeline(t *testing.T) {
	// The full Section III-D path: query → table → NN graph → scalar
	// field per attribute.
	db := newPlantDB(t)
	out := mustRun(t, db, Query{From: "plants", Where: "height >= 20"})
	g, err := nngraph.Build(out, nngraph.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != len(out.Rows) {
		t.Fatalf("NN graph %d vertices for %d rows", g.NumVertices(), len(out.Rows))
	}
	field := out.Column(0)
	if len(field) != g.NumVertices() {
		t.Fatal("attribute column is not a valid scalar field")
	}
}

func TestTokenizeQuotedAndOps(t *testing.T) {
	toks := tokenize("a>=3 AND (b!='x y') OR c<-2")
	want := []string{"a", ">=", "3", "AND", "(", "b", "!=", "'x y'", ")", "OR", "c", "<", "-2"}
	if !reflect.DeepEqual(toks, want) {
		t.Fatalf("tokenize = %q, want %q", toks, want)
	}
}
