package reldb

import "testing"

// FuzzParsePredicate asserts the predicate compiler's contract:
// arbitrary WHERE text never panics, and any predicate it accepts
// evaluates without panicking on every row of the relation.
func FuzzParsePredicate(f *testing.F) {
	f.Add("attr1 > 5")
	f.Add("genus = 'acer' AND attr2 <= 1.5")
	f.Add("(a = 1 OR b != 2) AND NOT c < 3")
	f.Add("attr1 >= ")
	f.Add("'''")
	f.Add("((((")
	f.Add("attr1 > 5 AND attr1 > 5 AND attr1 > 5 OR genus != 'salix'")
	rel := plantRelation()
	f.Fuzz(func(t *testing.T, src string) {
		e, err := parsePredicate(src, rel)
		if err != nil {
			return
		}
		for row := range rel.Rows {
			e.eval(rel, row)
		}
	})
}
