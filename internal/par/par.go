// Package par centralizes the parallelism policy shared by the scalar
// tree sweep (internal/core) and the measure kernels
// (internal/measures): one cutoff below which parallel code paths fall
// back to their serial twins, and one helper that turns an input size
// into a worker count.
//
// Keeping the policy in one place means every "is this input big
// enough to shard?" decision in the repo agrees, and tuning the
// threshold is a one-line change observed by all of them.
package par

import "runtime"

// SerialCutoff is the input size below which parallel code paths run
// serially: under ~4k items, goroutine startup and merge overhead
// exceeds the sharded work itself (measured by the sort ablations in
// internal/core and the worker gating in internal/measures).
const SerialCutoff = 4096

// Workers returns the worker count for an input of n items: 1 below
// SerialCutoff, otherwise GOMAXPROCS capped at n.
func Workers(n int) int {
	if n < SerialCutoff {
		return 1
	}
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	return w
}
