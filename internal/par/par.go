// Package par centralizes the parallelism policy shared by the scalar
// tree sweep (internal/core) and the measure kernels
// (internal/measures): one cutoff below which parallel code paths fall
// back to their serial twins, and one helper that turns an input size
// into a worker count.
//
// Keeping the policy in one place means every "is this input big
// enough to shard?" decision in the repo agrees, and tuning the
// threshold is a one-line change observed by all of them.
package par

import (
	"runtime"
	"sync/atomic"
)

// SerialCutoff is the input size below which parallel code paths run
// serially: under ~4k items, goroutine startup and merge overhead
// exceeds the sharded work itself (measured by the sort ablations in
// internal/core and the worker gating in internal/measures).
const SerialCutoff = 4096

// Workers returns the worker count for an input of n items: 1 below
// SerialCutoff, otherwise GOMAXPROCS capped at n.
func Workers(n int) int {
	if n < SerialCutoff {
		return 1
	}
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	return w
}

// partitionBytes is the process-wide cache-locality budget: when
// positive, partition-aware kernels bound the bytes of CSR data a
// worker touches per scheduling unit to roughly this many bytes.
// Atomic because cmd/serve sets it once at boot while tests flip it
// around kernels under -race.
var partitionBytes atomic.Int64

// SetPartitionBytes sets the process-wide partition budget in bytes of
// CSR data per partition. Zero (the default) disables partitioning;
// negative values are clamped to zero. Outputs of every kernel are
// bitwise identical for any value — the budget only reshapes the
// traversal order of the scheduling units, never the merge order of
// results.
func SetPartitionBytes(n int) {
	if n < 0 {
		n = 0
	}
	partitionBytes.Store(int64(n))
}

// PartitionBytes returns the current partition budget (0 = disabled).
func PartitionBytes() int {
	return int(partitionBytes.Load())
}

// SpanForBudget converts the partition budget into a claim span over a
// sequence of equal scheduling units that together touch roughly
// totalBytes: the number of consecutive units a worker should process
// per claim so its working set stays within the budget. Returns 0 when
// partitioning is disabled (no budget set, or degenerate inputs) —
// callers fall back to their non-partitioned schedule. The span is a
// locality hint only; callers guarantee bitwise-identical outputs for
// any span.
func SpanForBudget(totalBytes, units int) int {
	b := PartitionBytes()
	if b <= 0 || units <= 0 {
		return 0
	}
	per := totalBytes / units
	if per < 1 {
		per = 1
	}
	span := b / per
	if span < 1 {
		span = 1
	}
	return span
}
