// Package wire is the versioned, length-prefixed section container
// every multi-part binary artifact of this repository travels in.
//
// A container is
//
//	magic (4 bytes) | version (1 byte) | section* | EOF
//
// and a section is
//
//	tag (4 bytes) | payload length (u64 LE) | payload bytes
//
// Sections are self-delimiting, so a reader that does not know a tag
// skips it: fields appended by a future writer version decode cleanly
// on an old reader, which is the compatibility contract the snapshot
// codec (scalarfield.SaveSnapshot) is built on. Numbers are
// little-endian throughout, matching the existing super-tree codec in
// internal/core.
//
// Hostile input is a design constraint, not an afterthought: declared
// lengths and counts never cause an allocation larger than the bytes
// that actually arrive (payloads are read in bounded chunks, and
// in-payload counts are validated against the remaining payload size
// before any slice is made), so a corrupt or adversarial header cannot
// balloon memory. Truncation and garbage surface as errors, never
// panics.
package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// TagLen is the fixed byte length of a section tag.
const TagLen = 4

// Writer emits one container: magic + version at construction, then
// any number of sections. Callers must Flush before using the
// underlying writer again.
type Writer struct {
	bw *bufio.Writer
}

// NewWriter starts a container with the given 4-byte magic and
// version. It panics on a malformed magic — a compile-time constant in
// every caller — and returns any underlying write error.
func NewWriter(w io.Writer, magic string, version byte) (*Writer, error) {
	if len(magic) != TagLen {
		panic(fmt.Sprintf("wire: magic %q is not %d bytes", magic, TagLen))
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(version); err != nil {
		return nil, err
	}
	return &Writer{bw: bw}, nil
}

// Section appends one tagged section with the given payload bytes.
func (w *Writer) Section(tag string, payload []byte) error {
	if len(tag) != TagLen {
		panic(fmt.Sprintf("wire: tag %q is not %d bytes", tag, TagLen))
	}
	if _, err := w.bw.WriteString(tag); err != nil {
		return err
	}
	var lenBuf [8]byte
	binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(payload)))
	if _, err := w.bw.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err := w.bw.Write(payload)
	return err
}

// Flush drains the internal buffer to the underlying writer.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Reader walks the sections of one container.
type Reader struct {
	br      *bufio.Reader
	Version byte
}

// NewReader validates the container header (magic match, version at
// most maxVersion) and returns a section iterator.
func NewReader(r io.Reader, magic string, maxVersion byte) (*Reader, error) {
	if len(magic) != TagLen {
		panic(fmt.Sprintf("wire: magic %q is not %d bytes", magic, TagLen))
	}
	br := bufio.NewReader(r)
	head := make([]byte, TagLen)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("wire: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("wire: bad magic %q, want %q", head, magic)
	}
	version, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("wire: reading version: %w", err)
	}
	if version > maxVersion {
		return nil, fmt.Errorf("wire: unsupported version %d (max %d)", version, maxVersion)
	}
	return &Reader{br: br, Version: version}, nil
}

// Next returns the next section's tag and payload, or io.EOF after the
// last section. A container truncated mid-section is an
// io.ErrUnexpectedEOF, never a bare EOF, so callers can tell a clean
// end from a torn file.
func (r *Reader) Next() (tag string, payload *Payload, err error) {
	head := make([]byte, TagLen+8)
	if _, err := io.ReadFull(r.br, head[:TagLen]); err != nil {
		if err == io.EOF {
			return "", nil, io.EOF
		}
		return "", nil, fmt.Errorf("wire: reading section tag: %w", err)
	}
	if _, err := io.ReadFull(r.br, head[TagLen:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return "", nil, fmt.Errorf("wire: reading section length: %w", err)
	}
	length := binary.LittleEndian.Uint64(head[TagLen:])
	data, err := readBytes(r.br, length)
	if err != nil {
		return "", nil, fmt.Errorf("wire: reading %q payload: %w", head[:TagLen], err)
	}
	return string(head[:TagLen]), &Payload{data: data}, nil
}

// readBytes reads exactly n bytes in bounded chunks, so a hostile
// length cannot force a huge allocation before any payload arrives.
func readBytes(r io.Reader, n uint64) ([]byte, error) {
	const chunk = 1 << 16
	first := n
	if first > chunk {
		first = chunk
	}
	out := make([]byte, 0, first)
	buf := make([]byte, first)
	for uint64(len(out)) < n {
		k := n - uint64(len(out))
		if k > uint64(len(buf)) {
			k = uint64(len(buf))
		}
		if _, err := io.ReadFull(r, buf[:k]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
		out = append(out, buf[:k]...)
	}
	return out, nil
}

// Payload builds or consumes one section's bytes. The zero value is an
// empty payload ready for Put calls; Reader.Next returns payloads
// positioned at their first byte. All Get methods validate against the
// remaining length before allocating, and return errors (never panic)
// on truncated or malformed data.
type Payload struct {
	data []byte
	off  int
}

// NewPayload wraps already-read section bytes for decoding, for
// callers that walk a container by explicit offsets (io.ReaderAt)
// instead of through Reader. The payload aliases data.
func NewPayload(data []byte) *Payload { return &Payload{data: data} }

// Bytes returns the built payload.
func (p *Payload) Bytes() []byte { return p.data }

// Remaining reports the unread byte count.
func (p *Payload) Remaining() int { return len(p.data) - p.off }

// Reader returns an io.Reader over the unread remainder, for nested
// codecs (e.g. the super-tree format) embedded as a section payload.
func (p *Payload) Reader() io.Reader { return bytes.NewReader(p.data[p.off:]) }

// Rest consumes and returns the unread remainder without copying. The
// returned slice aliases the payload's backing bytes for as long as
// they live — it is the zero-copy handoff for sections whose payload
// IS a nested format's wire image (e.g. the snapshot codec's csr2
// graph arena), where a Reader round-trip would force a rebuild.
func (p *Payload) Rest() []byte {
	b := p.data[p.off:]
	p.off = len(p.data)
	return b
}

func (p *Payload) need(n int) error {
	if p.Remaining() < n {
		return fmt.Errorf("wire: payload truncated: need %d bytes, have %d", n, p.Remaining())
	}
	return nil
}

// PutUint64 appends a u64.
func (p *Payload) PutUint64(v uint64) {
	p.data = binary.LittleEndian.AppendUint64(p.data, v)
}

// Uint64 reads a u64.
func (p *Payload) Uint64() (uint64, error) {
	if err := p.need(8); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint64(p.data[p.off:])
	p.off += 8
	return v, nil
}

// PutInt64 appends an i64 (two's complement).
func (p *Payload) PutInt64(v int64) { p.PutUint64(uint64(v)) }

// Int64 reads an i64.
func (p *Payload) Int64() (int64, error) {
	v, err := p.Uint64()
	return int64(v), err
}

// PutBool appends a bool as one byte.
func (p *Payload) PutBool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	p.data = append(p.data, b)
}

// Bool reads a bool; any nonzero byte is true.
func (p *Payload) Bool() (bool, error) {
	if err := p.need(1); err != nil {
		return false, err
	}
	v := p.data[p.off] != 0
	p.off++
	return v, nil
}

// PutFloat64 appends an f64 bit pattern.
func (p *Payload) PutFloat64(v float64) { p.PutUint64(math.Float64bits(v)) }

// Float64 reads an f64.
func (p *Payload) Float64() (float64, error) {
	v, err := p.Uint64()
	return math.Float64frombits(v), err
}

// PutString appends a u32 length followed by the bytes.
func (p *Payload) PutString(s string) {
	p.data = binary.LittleEndian.AppendUint32(p.data, uint32(len(s)))
	p.data = append(p.data, s...)
}

// String reads a length-prefixed string. The declared length is
// checked against the remaining payload before any copy.
func (p *Payload) String() (string, error) {
	if err := p.need(4); err != nil {
		return "", err
	}
	n := int(binary.LittleEndian.Uint32(p.data[p.off:]))
	p.off += 4
	if err := p.need(n); err != nil {
		return "", err
	}
	s := string(p.data[p.off : p.off+n])
	p.off += n
	return s, nil
}

// PutFloat64s appends a u64 count followed by the raw f64 values.
func (p *Payload) PutFloat64s(vs []float64) {
	p.PutUint64(uint64(len(vs)))
	for _, v := range vs {
		p.PutFloat64(v)
	}
}

// Float64s reads a counted f64 slice. The count is validated against
// the remaining payload bytes before the slice is allocated.
func (p *Payload) Float64s() ([]float64, error) {
	n, err := p.Uint64()
	if err != nil {
		return nil, err
	}
	if n > uint64(p.Remaining())/8 {
		return nil, fmt.Errorf("wire: float64 count %d exceeds remaining payload (%d bytes)", n, p.Remaining())
	}
	out := make([]float64, n)
	for i := range out {
		if out[i], err = p.Float64(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// PutInt32s appends a u64 count followed by the raw i32 values.
func (p *Payload) PutInt32s(vs []int32) {
	p.PutUint64(uint64(len(vs)))
	for _, v := range vs {
		p.data = binary.LittleEndian.AppendUint32(p.data, uint32(v))
	}
}

// Int32s reads a counted i32 slice, count-validated like Float64s.
func (p *Payload) Int32s() ([]int32, error) {
	n, err := p.Uint64()
	if err != nil {
		return nil, err
	}
	if n > uint64(p.Remaining())/4 {
		return nil, fmt.Errorf("wire: int32 count %d exceeds remaining payload (%d bytes)", n, p.Remaining())
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(p.data[p.off:]))
		p.off += 4
	}
	return out, nil
}

// PutBytes appends raw bytes with no length prefix; the section length
// delimits them. Meant for one trailing nested-codec blob per section.
func (p *Payload) PutBytes(b []byte) { p.data = append(p.data, b...) }
