package wire

import (
	"bytes"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestContainerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "TST1", 3)
	if err != nil {
		t.Fatal(err)
	}
	var a Payload
	a.PutString("hello")
	a.PutUint64(42)
	a.PutBool(true)
	a.PutFloat64(math.Pi)
	a.PutInt64(-7)
	if err := w.Section("aaaa", a.Bytes()); err != nil {
		t.Fatal(err)
	}
	var b Payload
	b.PutFloat64s([]float64{1, 2.5, math.Inf(1), math.NaN()})
	b.PutInt32s([]int32{-1, 0, 1 << 30})
	if err := w.Section("bbbb", b.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := w.Section("empt", nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()), "TST1", 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Version != 3 {
		t.Fatalf("version %d, want 3", r.Version)
	}

	tag, p, err := r.Next()
	if err != nil || tag != "aaaa" {
		t.Fatalf("first section %q, %v", tag, err)
	}
	if s, err := p.String(); err != nil || s != "hello" {
		t.Fatalf("string %q, %v", s, err)
	}
	if v, err := p.Uint64(); err != nil || v != 42 {
		t.Fatalf("uint64 %d, %v", v, err)
	}
	if v, err := p.Bool(); err != nil || !v {
		t.Fatalf("bool %v, %v", v, err)
	}
	if v, err := p.Float64(); err != nil || v != math.Pi {
		t.Fatalf("float64 %v, %v", v, err)
	}
	if v, err := p.Int64(); err != nil || v != -7 {
		t.Fatalf("int64 %d, %v", v, err)
	}
	if p.Remaining() != 0 {
		t.Fatalf("%d bytes left over", p.Remaining())
	}

	tag, p, err = r.Next()
	if err != nil || tag != "bbbb" {
		t.Fatalf("second section %q, %v", tag, err)
	}
	fs, err := p.Float64s()
	if err != nil || len(fs) != 4 || fs[1] != 2.5 || !math.IsInf(fs[2], 1) || !math.IsNaN(fs[3]) {
		t.Fatalf("float64s %v, %v", fs, err)
	}
	is, err := p.Int32s()
	if err != nil || !reflect.DeepEqual(is, []int32{-1, 0, 1 << 30}) {
		t.Fatalf("int32s %v, %v", is, err)
	}

	tag, p, err = r.Next()
	if err != nil || tag != "empt" || p.Remaining() != 0 {
		t.Fatalf("empty section %q (%d bytes), %v", tag, p.Remaining(), err)
	}

	if _, _, err := r.Next(); err != io.EOF {
		t.Fatalf("after last section got %v, want io.EOF", err)
	}
}

func TestHeaderValidation(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, "GOOD", 1)
	w.Section("sect", []byte{1})
	w.Flush()

	if _, err := NewReader(bytes.NewReader(buf.Bytes()), "EVIL", 1); err == nil {
		t.Fatal("wrong magic accepted")
	}
	if _, err := NewReader(bytes.NewReader(buf.Bytes()), "GOOD", 0); err == nil {
		t.Fatal("future version accepted")
	}
	if _, err := NewReader(strings.NewReader("GO"), "GOOD", 1); err == nil {
		t.Fatal("truncated magic accepted")
	}
}

// TestTruncationIsAnErrorNotEOF: a container cut mid-section must
// surface as an error distinct from the clean end-of-sections EOF.
func TestTruncationIsAnErrorNotEOF(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, "TST1", 1)
	var p Payload
	p.PutFloat64s(make([]float64, 100))
	w.Section("data", p.Bytes())
	w.Flush()
	full := buf.Bytes()

	for _, cut := range []int{len(full) - 1, len(full) - 100, 7, 9, 13} {
		r, err := NewReader(bytes.NewReader(full[:cut]), "TST1", 1)
		if err != nil {
			continue // header itself truncated: also fine
		}
		_, _, err = r.Next()
		if err == nil || err == io.EOF {
			t.Fatalf("truncation at %d bytes returned %v, want a real error", cut, err)
		}
	}
}

// TestHostileCountsDoNotBalloon: declared lengths and element counts
// far beyond the actual data must error without huge allocations.
func TestHostileCountsDoNotBalloon(t *testing.T) {
	// Section declaring a petabyte payload with 4 actual bytes.
	evil := append([]byte("TST1\x01sect"), []byte{0, 0, 0, 0, 0, 0, 4, 0}...) // 2^50 LE
	evil = append(evil, 1, 2, 3, 4)
	r, err := NewReader(bytes.NewReader(evil), "TST1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Next(); err == nil {
		t.Fatal("petabyte section length accepted")
	}

	// In-payload count exceeding the payload.
	var p Payload
	p.PutUint64(1 << 40) // claims 2^40 float64s
	p.PutFloat64(1)
	if _, err := p.Float64s(); err == nil {
		t.Fatal("overlong float64 count accepted")
	}
	var q Payload
	q.PutUint64(1 << 40)
	if _, err := q.Int32s(); err == nil {
		t.Fatal("overlong int32 count accepted")
	}
}

func TestStringLengthValidated(t *testing.T) {
	var p Payload
	p.PutUint64(0) // reuse as a bogus 4-byte length prefix + few bytes
	p.off = 0
	p.data = []byte{255, 255, 255, 255, 'x'}
	if _, err := p.String(); err == nil {
		t.Fatal("overlong string length accepted")
	}
}
