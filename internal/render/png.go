// Package render turns terrain layouts into concrete artifacts: an
// isometric software-rendered PNG of the 3D terrain (the substitute
// for the paper's interactive OpenGL viewer), a 2D treemap PNG
// (Figure 5's linked 2D display), an SVG of the nested boundaries,
// and a Wavefront OBJ mesh for external 3D tools.
//
// Rendering is deterministic and allocation-conscious; the paper's
// interactive rotate/zoom operations map to the Angle and Zoom
// parameters here.
package render

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math"
	"os"
	"sort"

	"repro/internal/terrain"
)

// Options configures terrain rendering.
type Options struct {
	// Width and Height are the output image dimensions in pixels.
	// Default 960×720.
	Width, Height int
	// Angle rotates the terrain around the vertical axis (radians),
	// the paper's "rotate" interaction. Default 0.6.
	Angle float64
	// Zoom scales the terrain about its center; 1 fits the whole
	// terrain, >1 zooms in (the paper's "zoom" interaction).
	Zoom float64
	// HeightFraction is the fraction of the image height the scalar
	// range occupies. Default 0.45.
	HeightFraction float64
	// Background fills the canvas. Default near-white.
	Background color.RGBA
}

func (o *Options) fill() {
	if o.Width <= 0 {
		o.Width = 960
	}
	if o.Height <= 0 {
		o.Height = 720
	}
	if o.Angle == 0 {
		o.Angle = 0.6
	}
	if o.Zoom <= 0 {
		o.Zoom = 1
	}
	if o.HeightFraction <= 0 {
		o.HeightFraction = 0.45
	}
	if o.Background == (color.RGBA{}) {
		o.Background = color.RGBA{250, 250, 248, 255}
	}
}

// TerrainPNG renders the heightmap as an isometric 3D terrain.
// nodeColor[s] colors cells owned by super node s; cells outside all
// boundaries use a neutral ground color. Cells are drawn back to front
// (painter's algorithm), each as a vertical column from the base plane
// to its height, with simple height- and slope-based shading.
func TerrainPNG(hm *terrain.Heightmap, nodeColor []color.RGBA, opts Options) *image.RGBA {
	opts.fill()
	img := image.NewRGBA(image.Rect(0, 0, opts.Width, opts.Height))
	fill(img, opts.Background)

	lo, hi := hm.MinMax()
	hRange := hi - lo
	if hRange == 0 {
		hRange = 1
	}
	sin, cos := math.Sin(opts.Angle), math.Cos(opts.Angle)

	// Projected footprint of the rotated unit square, to fit scale.
	maxR := (math.Abs(sin) + math.Abs(cos)) * 0.5
	scaleX := float64(opts.Width) * 0.48 / maxR * opts.Zoom
	scaleY := float64(opts.Height) * 0.26 / maxR * opts.Zoom
	zScale := float64(opts.Height) * opts.HeightFraction * opts.Zoom
	cx := float64(opts.Width) / 2
	cy := float64(opts.Height) * 0.72

	// project maps grid coordinates (gx, gy in [0,1]) and height to
	// screen space.
	project := func(gx, gy, h float64) (float64, float64) {
		x, y := gx-0.5, gy-0.5
		rx := x*cos - y*sin
		ry := x*sin + y*cos
		sx := cx + rx*scaleX
		sy := cy + ry*scaleY - (h-lo)/hRange*zScale
		return sx, sy
	}

	ground := color.RGBA{225, 222, 215, 255}
	w, h := hm.W, hm.H
	stepX := 1 / float64(w)
	stepY := 1 / float64(h)
	colW := int(math.Ceil(scaleX * stepX * 2))
	if colW < 1 {
		colW = 1
	}

	// Painter order: sort rows by projected depth. With a rotated
	// camera the back-to-front order over cells follows increasing
	// rx*sin + ry*cos... iterating the grid in the order of
	// increasing projected screen y of the base plane is sufficient
	// because columns are vertical. Compute base-plane depth per cell
	// and bucket rows by it.
	type cell struct {
		x, y  int
		depth float64
	}
	cells := make([]cell, 0, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			gx, gy := (float64(x)+0.5)*stepX, (float64(y)+0.5)*stepY
			_, sy := project(gx, gy, lo)
			cells = append(cells, cell{x, y, sy})
		}
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].depth < cells[j].depth })

	for _, c := range cells {
		gx, gy := (float64(c.x)+0.5)*stepX, (float64(c.y)+0.5)*stepY
		ht := hm.At(c.x, c.y)
		topX, topY := project(gx, gy, ht)
		_, baseY := project(gx, gy, lo)

		node := hm.NodeAt(c.x, c.y)
		var col color.RGBA
		if node < 0 || int(node) >= len(nodeColor) {
			col = ground
		} else {
			col = nodeColor[node]
		}
		// Slope shading: darken columns that are walls (lower than the
		// cell behind them is irrelevant; compare with right/down
		// neighbors for a simple relief cue) and lighten high plateaus.
		shade := 0.82 + 0.18*(ht-lo)/hRange
		side := scale(col, shade*0.62)
		top := scale(col, shade)

		x0 := int(topX) - colW/2
		drawColumn(img, x0, colW, int(topY), int(baseY), top, side)
	}
	return img
}

// drawColumn draws one terrain column: a 2px top cap in the top color
// and the shaft in the side color.
func drawColumn(img *image.RGBA, x0, w, yTop, yBase int, top, side color.RGBA) {
	b := img.Bounds()
	if yBase < yTop {
		yTop, yBase = yBase, yTop
	}
	for x := x0; x < x0+w; x++ {
		if x < b.Min.X || x >= b.Max.X {
			continue
		}
		for y := yTop; y <= yBase; y++ {
			if y < b.Min.Y || y >= b.Max.Y {
				continue
			}
			if y-yTop < 2 {
				img.SetRGBA(x, y, top)
			} else {
				img.SetRGBA(x, y, side)
			}
		}
	}
}

// TreemapPNG renders the layout's 2D treemap view (Figure 5(a)):
// boundaries at height zero, cells colored by node color, with darker
// 1px seams where ownership changes so the nesting reads clearly.
func TreemapPNG(hm *terrain.Heightmap, nodeColor []color.RGBA, width, height int) *image.RGBA {
	if width <= 0 {
		width = 720
	}
	if height <= 0 {
		height = 720
	}
	img := image.NewRGBA(image.Rect(0, 0, width, height))
	ground := color.RGBA{235, 233, 228, 255}
	for py := 0; py < height; py++ {
		for px := 0; px < width; px++ {
			x := px * hm.W / width
			y := py * hm.H / height
			node := hm.NodeAt(x, y)
			var col color.RGBA
			if node < 0 || int(node) >= len(nodeColor) {
				col = ground
			} else {
				col = nodeColor[node]
			}
			// Seam detection against the left/up cell.
			if x > 0 && hm.NodeAt(x-1, y) != node || y > 0 && hm.NodeAt(x, y-1) != node {
				col = scale(col, 0.55)
			}
			img.SetRGBA(px, py, col)
		}
	}
	return img
}

func fill(img *image.RGBA, c color.RGBA) {
	b := img.Bounds()
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			img.SetRGBA(x, y, c)
		}
	}
}

func scale(c color.RGBA, f float64) color.RGBA {
	s := func(v uint8) uint8 {
		x := float64(v) * f
		if x > 255 {
			x = 255
		}
		return uint8(x)
	}
	return color.RGBA{s(c.R), s(c.G), s(c.B), c.A}
}

// WritePNG encodes img to path.
func WritePNG(path string, img image.Image) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("render: %w", err)
	}
	defer f.Close()
	if err := png.Encode(f, img); err != nil {
		return fmt.Errorf("render: encoding %s: %w", path, err)
	}
	return nil
}

// EncodePNG encodes img to w.
func EncodePNG(w io.Writer, img image.Image) error {
	return png.Encode(w, img)
}
