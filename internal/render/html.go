package render

import (
	"encoding/json"
	"fmt"
	"html/template"
	"image/color"
	"io"

	"repro/internal/terrain"
)

// TerrainHTML writes a single self-contained HTML file that renders
// the terrain interactively in the browser: the nested-boundary
// geometry is embedded as JSON and a small canvas script draws the
// isometric view with mouse-drag rotation and wheel zoom — the
// paper's rotate/zoom interactions in a file that can be mailed to a
// collaborator with no server or dependencies.
func TerrainHTML(w io.Writer, l *terrain.Layout, nodeColors []color.RGBA, title string) error {
	if len(nodeColors) != len(l.Rects) {
		return fmt.Errorf("render: %d colors for %d boundaries", len(nodeColors), len(l.Rects))
	}
	type node struct {
		X0, Y0, X1, Y1 float64
		H              float64
		C              string
		P              int32
	}
	nodes := make([]node, len(l.Rects))
	minH, maxH := l.Height[0], l.Height[0]
	for _, h := range l.Height {
		if h < minH {
			minH = h
		}
		if h > maxH {
			maxH = h
		}
	}
	for s, r := range l.Rects {
		c := nodeColors[s]
		nodes[s] = node{
			X0: r.X0, Y0: r.Y0, X1: r.X1, Y1: r.Y1,
			H: l.Height[s],
			C: fmt.Sprintf("#%02x%02x%02x", c.R, c.G, c.B),
			P: l.ST.Parent[s],
		}
	}
	payload, err := json.Marshal(struct {
		Nodes      []node
		MinH, MaxH float64
	}{nodes, minH, maxH})
	if err != nil {
		return err
	}
	return htmlTmpl.Execute(w, struct {
		Title string
		Data  template.JS
	}{title, template.JS(payload)})
}

var htmlTmpl = template.Must(template.New("terrain").Parse(`<!doctype html>
<meta charset="utf-8">
<title>{{.Title}}</title>
<style>body{margin:0;font-family:sans-serif;background:#fafaf8}
#hud{position:fixed;top:8px;left:8px;color:#555;font-size:13px}</style>
<canvas id="c"></canvas>
<div id="hud">{{.Title}} — drag to rotate, wheel to zoom</div>
<script>
const DATA = {{.Data}};
const canvas = document.getElementById('c');
const ctx = canvas.getContext('2d');
let angle = 0.6, zoom = 1, drag = null;
function resize(){ canvas.width = innerWidth; canvas.height = innerHeight; draw(); }
addEventListener('resize', resize);
canvas.addEventListener('mousedown', e => drag = e.clientX);
addEventListener('mouseup', () => drag = null);
addEventListener('mousemove', e => {
  if (drag !== null) { angle += (e.clientX - drag) * 0.01; drag = e.clientX; draw(); }
});
canvas.addEventListener('wheel', e => {
  e.preventDefault();
  zoom *= e.deltaY < 0 ? 1.1 : 0.9;
  zoom = Math.max(0.3, Math.min(8, zoom));
  draw();
}, {passive: false});

// Isometric projection of layout-space (x, y, h) to screen.
function project(x, y, h) {
  const cx = x - 0.5, cy = y - 0.5;
  const rx = cx * Math.cos(angle) - cy * Math.sin(angle);
  const ry = cx * Math.sin(angle) + cy * Math.cos(angle);
  const span = DATA.MaxH > DATA.MinH ? DATA.MaxH - DATA.MinH : 1;
  const hn = (h - DATA.MinH) / span;
  const s = Math.min(canvas.width, canvas.height) * 0.55 * zoom;
  return [canvas.width/2 + rx * s,
          canvas.height*0.62 + ry * s * 0.5 - hn * canvas.height * 0.35 * zoom];
}
function shade(hex, f) {
  const n = parseInt(hex.slice(1), 16);
  const r = Math.round(((n>>16)&255)*f), g = Math.round(((n>>8)&255)*f), b = Math.round((n&255)*f);
  return 'rgb(' + r + ',' + g + ',' + b + ')';
}
function draw() {
  ctx.fillStyle = '#fafaf8';
  ctx.fillRect(0, 0, canvas.width, canvas.height);
  // Paint plateaus back-to-front: sort by projected depth of center.
  const order = DATA.Nodes.map((n, i) => i);
  order.sort((a, b) => {
    const na = DATA.Nodes[a], nb = DATA.Nodes[b];
    const da = ((na.X0+na.X1)/2-0.5)*Math.sin(angle) + ((na.Y0+na.Y1)/2-0.5)*Math.cos(angle);
    const db = ((nb.X0+nb.X1)/2-0.5)*Math.sin(angle) + ((nb.Y0+nb.Y1)/2-0.5)*Math.cos(angle);
    return da - db || na.H - nb.H;
  });
  for (const i of order) {
    const n = DATA.Nodes[i];
    if (n.X1 <= n.X0 || n.Y1 <= n.Y0) continue;
    const base = n.P >= 0 ? DATA.Nodes[n.P].H : DATA.MinH;
    const corners = [[n.X0,n.Y0],[n.X1,n.Y0],[n.X1,n.Y1],[n.X0,n.Y1]];
    // Walls from parent height up to this plateau.
    for (let k = 0; k < 4; k++) {
      const [ax, ay] = corners[k], [bx, by] = corners[(k+1)%4];
      const p1 = project(ax, ay, base), p2 = project(bx, by, base);
      const p3 = project(bx, by, n.H), p4 = project(ax, ay, n.H);
      ctx.beginPath();
      ctx.moveTo(p1[0], p1[1]); ctx.lineTo(p2[0], p2[1]);
      ctx.lineTo(p3[0], p3[1]); ctx.lineTo(p4[0], p4[1]);
      ctx.closePath();
      ctx.fillStyle = shade(n.C, 0.75);
      ctx.fill();
    }
    // Plateau top.
    ctx.beginPath();
    const t0 = project(n.X0, n.Y0, n.H);
    ctx.moveTo(t0[0], t0[1]);
    for (let k = 1; k < 4; k++) {
      const [x, y] = corners[k];
      const p = project(x, y, n.H);
      ctx.lineTo(p[0], p[1]);
    }
    ctx.closePath();
    ctx.fillStyle = n.C;
    ctx.fill();
    ctx.strokeStyle = shade(n.C, 0.6);
    ctx.stroke();
  }
}
resize();
</script>
`))
