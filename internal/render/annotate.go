package render

import (
	"bufio"
	"fmt"
	"image/color"
	"io"

	"repro/internal/terrain"
)

// AnnotatedBoundarySVG writes the nested-boundary SVG with the top-K
// peaks at cut height alpha labeled — the counterpart of the paper's
// figure annotations ("K1", "K2") that point readers at the densest
// components. Labels are placed at each peak's boundary center with a
// rank, its top scalar, and its component size.
func AnnotatedBoundarySVG(w io.Writer, l *terrain.Layout, nodeColor []color.RGBA, size int, alpha float64, topK int) error {
	if size <= 0 {
		size = 720
	}
	// Reuse the plain boundary rendering, then append the labels
	// before closing the document.
	var inner svgCapture
	if err := BoundarySVG(&inner, l, nodeColor, size); err != nil {
		return err
	}
	body := inner.buf
	if len(body) < len("</svg>\n") {
		return fmt.Errorf("render: boundary SVG unexpectedly short")
	}
	body = body[:len(body)-len("</svg>\n")]

	bw := bufio.NewWriter(w)
	if _, err := bw.Write(body); err != nil {
		return err
	}
	peaks := l.PeaksAt(alpha)
	if topK > 0 && len(peaks) > topK {
		peaks = peaks[:topK]
	}
	s := float64(size)
	for i, p := range peaks {
		cx := (p.Bounds.X0 + p.Bounds.X1) / 2 * s
		cy := (p.Bounds.Y0 + p.Bounds.Y1) / 2 * s
		fmt.Fprintf(bw, `<circle cx="%.1f" cy="%.1f" r="11" fill="#ffffff" fill-opacity="0.85" stroke="#333"/>`+"\n", cx, cy)
		fmt.Fprintf(bw, `<text x="%.1f" y="%.1f" font-size="12" font-family="sans-serif" text-anchor="middle" fill="#111">K%d</text>`+"\n",
			cx, cy+4, i+1)
		fmt.Fprintf(bw, `<text x="%.1f" y="%.1f" font-size="9" font-family="sans-serif" text-anchor="middle" fill="#333">top %.4g · %d items</text>`+"\n",
			cx, cy+18, p.Top, p.Items)
	}
	fmt.Fprint(bw, "</svg>\n")
	return bw.Flush()
}

// svgCapture buffers writes so the closing tag can be stripped.
type svgCapture struct{ buf []byte }

func (c *svgCapture) Write(p []byte) (int, error) {
	c.buf = append(c.buf, p...)
	return len(p), nil
}
