package render

import (
	"bufio"
	"fmt"
	"image/color"
	"io"
	"os"

	"repro/internal/terrain"
)

// BoundarySVG writes the layout's nested boundaries as an SVG: one
// rectangle per super node, drawn parents-first so children overlay,
// filled with the node color and stroked for legibility. This is the
// vector counterpart of the treemap view, convenient for papers and
// docs because it stays crisp at any zoom.
func BoundarySVG(w io.Writer, l *terrain.Layout, nodeColor []color.RGBA, size int) error {
	if size <= 0 {
		size = 720
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		size, size, size, size)
	fmt.Fprintf(bw, `<rect width="%d" height="%d" fill="#ebe9e4"/>`+"\n", size, size)
	s := float64(size)
	for node := 0; node < l.ST.Len(); node++ {
		r := l.Rects[node]
		col := color.RGBA{160, 160, 160, 255}
		if node < len(nodeColor) {
			col = nodeColor[node]
		}
		fmt.Fprintf(bw,
			`<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="#%02x%02x%02x" stroke="#333" stroke-width="0.8"><title>node %d scalar %.4g</title></rect>`+"\n",
			r.X0*s, r.Y0*s, r.W()*s, r.H()*s, col.R, col.G, col.B, node, l.Height[node])
	}
	fmt.Fprintln(bw, `</svg>`)
	return bw.Flush()
}

// WriteBoundarySVG writes the boundary SVG to a file.
func WriteBoundarySVG(path string, l *terrain.Layout, nodeColor []color.RGBA, size int) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("render: %w", err)
	}
	defer f.Close()
	return BoundarySVG(f, l, nodeColor, size)
}

// TerrainOBJ writes the rasterized terrain as a Wavefront OBJ mesh:
// one top quad per cell, plus wall quads wherever adjacent cells
// differ in height, so any external 3D viewer reproduces the paper's
// interactive terrain. Heights are normalized so the scalar range maps
// to heightScale world units over a unit-square footprint.
func TerrainOBJ(w io.Writer, hm *terrain.Heightmap, heightScale float64) error {
	if heightScale <= 0 {
		heightScale = 0.3
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# scalar-field terrain mesh")
	lo, hi := hm.MinMax()
	rng := hi - lo
	if rng == 0 {
		rng = 1
	}
	zOf := func(h float64) float64 { return (h - lo) / rng * heightScale }
	sx := 1 / float64(hm.W)
	sy := 1 / float64(hm.H)

	// Emit 4 corner vertices per cell at the cell's height; vertices
	// are 1-indexed in OBJ.
	idx := func(x, y, corner int) int { return (y*hm.W+x)*4 + corner + 1 }
	for y := 0; y < hm.H; y++ {
		for x := 0; x < hm.W; x++ {
			z := zOf(hm.At(x, y))
			x0, y0 := float64(x)*sx, float64(y)*sy
			x1, y1 := x0+sx, y0+sy
			fmt.Fprintf(bw, "v %.5f %.5f %.5f\n", x0, z, y0)
			fmt.Fprintf(bw, "v %.5f %.5f %.5f\n", x1, z, y0)
			fmt.Fprintf(bw, "v %.5f %.5f %.5f\n", x1, z, y1)
			fmt.Fprintf(bw, "v %.5f %.5f %.5f\n", x0, z, y1)
		}
	}
	// Top faces.
	for y := 0; y < hm.H; y++ {
		for x := 0; x < hm.W; x++ {
			fmt.Fprintf(bw, "f %d %d %d %d\n", idx(x, y, 0), idx(x, y, 1), idx(x, y, 2), idx(x, y, 3))
		}
	}
	// Walls between horizontally and vertically adjacent cells of
	// different heights, stitching corner vertices of both cells.
	for y := 0; y < hm.H; y++ {
		for x := 0; x+1 < hm.W; x++ {
			if hm.At(x, y) != hm.At(x+1, y) {
				fmt.Fprintf(bw, "f %d %d %d %d\n",
					idx(x, y, 1), idx(x, y, 2), idx(x+1, y, 3), idx(x+1, y, 0))
			}
		}
	}
	for y := 0; y+1 < hm.H; y++ {
		for x := 0; x < hm.W; x++ {
			if hm.At(x, y) != hm.At(x, y+1) {
				fmt.Fprintf(bw, "f %d %d %d %d\n",
					idx(x, y, 3), idx(x, y, 2), idx(x, y+1, 1), idx(x, y+1, 0))
			}
		}
	}
	return bw.Flush()
}

// WriteTerrainOBJ writes the terrain mesh to a file.
func WriteTerrainOBJ(path string, hm *terrain.Heightmap, heightScale float64) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("render: %w", err)
	}
	defer f.Close()
	return TerrainOBJ(f, hm, heightScale)
}
