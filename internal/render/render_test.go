package render

import (
	"bytes"
	"image/color"
	"image/png"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/terrain"
)

func testLayout() (*terrain.Layout, *core.SuperTree) {
	b := graph.NewBuilder(7)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	b.AddEdge(2, 5)
	b.AddEdge(5, 6)
	g := b.Build()
	st := core.VertexSuperTree(core.MustVertexField(g, []float64{5, 4, 1, 3, 6, 2, 7}))
	return terrain.NewLayout(st, terrain.LayoutOptions{}), st
}

func nodeColors(st *core.SuperTree) []color.RGBA {
	intensity := terrain.Normalize(st.Scalar)
	out := make([]color.RGBA, st.Len())
	for s := range out {
		out[s] = terrain.Colormap(intensity[s])
	}
	return out
}

func TestTerrainPNGProducesImage(t *testing.T) {
	l, st := testLayout()
	hm := l.Rasterize(96, 96)
	img := TerrainPNG(hm, nodeColors(st), Options{Width: 320, Height: 240})
	if img.Bounds().Dx() != 320 || img.Bounds().Dy() != 240 {
		t.Fatalf("image dims %v", img.Bounds())
	}
	// The render must have painted something besides background.
	bg := Options{}
	bg.fill()
	painted := 0
	for y := 0; y < 240; y++ {
		for x := 0; x < 320; x++ {
			if img.RGBAAt(x, y) != bg.Background {
				painted++
			}
		}
	}
	if painted < 1000 {
		t.Errorf("only %d non-background pixels; terrain missing", painted)
	}
}

func TestTerrainPNGRotationChangesImage(t *testing.T) {
	l, st := testLayout()
	hm := l.Rasterize(64, 64)
	a := TerrainPNG(hm, nodeColors(st), Options{Width: 200, Height: 160, Angle: 0.4})
	b := TerrainPNG(hm, nodeColors(st), Options{Width: 200, Height: 160, Angle: 1.2})
	if bytes.Equal(a.Pix, b.Pix) {
		t.Error("rotating the camera produced an identical image")
	}
}

func TestTerrainPNGZoom(t *testing.T) {
	l, st := testLayout()
	hm := l.Rasterize(64, 64)
	a := TerrainPNG(hm, nodeColors(st), Options{Width: 200, Height: 160, Zoom: 1})
	b := TerrainPNG(hm, nodeColors(st), Options{Width: 200, Height: 160, Zoom: 2})
	if bytes.Equal(a.Pix, b.Pix) {
		t.Error("zooming produced an identical image")
	}
}

func TestTerrainPNGDeterministic(t *testing.T) {
	l, st := testLayout()
	hm := l.Rasterize(64, 64)
	a := TerrainPNG(hm, nodeColors(st), Options{Width: 200, Height: 160})
	b := TerrainPNG(hm, nodeColors(st), Options{Width: 200, Height: 160})
	if !bytes.Equal(a.Pix, b.Pix) {
		t.Error("same inputs rendered differently")
	}
}

func TestTreemapPNG(t *testing.T) {
	l, st := testLayout()
	hm := l.Rasterize(64, 64)
	img := TreemapPNG(hm, nodeColors(st), 128, 128)
	if img.Bounds().Dx() != 128 {
		t.Fatalf("treemap dims %v", img.Bounds())
	}
	// Defaults kick in for non-positive sizes.
	img2 := TreemapPNG(hm, nodeColors(st), 0, 0)
	if img2.Bounds().Dx() != 720 {
		t.Errorf("default treemap width = %d, want 720", img2.Bounds().Dx())
	}
}

func TestEncodePNGRoundTrip(t *testing.T) {
	l, st := testLayout()
	hm := l.Rasterize(32, 32)
	img := TerrainPNG(hm, nodeColors(st), Options{Width: 100, Height: 80})
	var buf bytes.Buffer
	if err := EncodePNG(&buf, img); err != nil {
		t.Fatal(err)
	}
	decoded, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Bounds().Dx() != 100 {
		t.Errorf("decoded width %d", decoded.Bounds().Dx())
	}
}

func TestWritePNGAndSVGFiles(t *testing.T) {
	dir := t.TempDir()
	l, st := testLayout()
	hm := l.Rasterize(32, 32)
	img := TerrainPNG(hm, nodeColors(st), Options{Width: 64, Height: 64})
	if err := WritePNG(dir+"/t.png", img); err != nil {
		t.Fatal(err)
	}
	if err := WriteBoundarySVG(dir+"/t.svg", l, nodeColors(st), 400); err != nil {
		t.Fatal(err)
	}
	if err := WriteTerrainOBJ(dir+"/t.obj", hm, 0.3); err != nil {
		t.Fatal(err)
	}
}

func TestBoundarySVGStructure(t *testing.T) {
	l, st := testLayout()
	var sb strings.Builder
	if err := BoundarySVG(&sb, l, nodeColors(st), 500); err != nil {
		t.Fatal(err)
	}
	svg := sb.String()
	if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Error("malformed SVG envelope")
	}
	// One rect per super node plus the background rect.
	if got := strings.Count(svg, "<rect"); got != st.Len()+1 {
		t.Errorf("%d rects, want %d", got, st.Len()+1)
	}
}

func TestTerrainOBJStructure(t *testing.T) {
	l, _ := testLayout()
	hm := l.Rasterize(8, 8)
	var sb strings.Builder
	if err := TerrainOBJ(&sb, hm, 0.3); err != nil {
		t.Fatal(err)
	}
	obj := sb.String()
	nV := strings.Count(obj, "\nv ") + boolToInt(strings.HasPrefix(obj, "v "))
	if nV != 8*8*4 {
		t.Errorf("OBJ has %d vertices, want %d", nV, 8*8*4)
	}
	if !strings.Contains(obj, "\nf ") {
		t.Error("OBJ has no faces")
	}
	// Faces reference valid vertex indexes (spot check: no index 0).
	if strings.Contains(obj, "f 0 ") {
		t.Error("OBJ face references vertex 0 (OBJ is 1-indexed)")
	}
}

func TestTerrainOBJFlatHeightmap(t *testing.T) {
	// Constant heights → no wall faces beyond the top quads.
	g := graph.NewBuilder(3).Build()
	st := core.VertexSuperTree(core.MustVertexField(g, []float64{2, 2, 2}))
	l := terrain.NewLayout(st, terrain.LayoutOptions{})
	hm := l.Rasterize(4, 4)
	// Overwrite to constant to force zero walls.
	for i := range hm.Height {
		hm.Height[i] = 1
	}
	var sb strings.Builder
	if err := TerrainOBJ(&sb, hm, 0.3); err != nil {
		t.Fatal(err)
	}
	faces := strings.Count(sb.String(), "\nf ")
	if faces != 16 {
		t.Errorf("flat terrain has %d faces, want 16 tops only", faces)
	}
}

func TestScaleClamps(t *testing.T) {
	c := scale(color.RGBA{200, 200, 200, 255}, 2)
	if c.R != 255 {
		t.Errorf("scale should clamp at 255, got %d", c.R)
	}
	if c.A != 255 {
		t.Errorf("alpha must be preserved, got %d", c.A)
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestTerrainHTMLSelfContained(t *testing.T) {
	l, st := testLayout()
	var buf bytes.Buffer
	if err := TerrainHTML(&buf, l, nodeColors(st), "test terrain"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<!doctype html", "test terrain", "const DATA", "project(", "addEventListener"} {
		if !strings.Contains(out, want) {
			t.Fatalf("HTML export missing %q", want)
		}
	}
	// The embedded JSON must mention every boundary.
	if got := strings.Count(out, `"X0"`); got != st.Len() {
		t.Fatalf("HTML embeds %d boundaries, want %d", got, st.Len())
	}
}

func TestTerrainHTMLRejectsColorMismatch(t *testing.T) {
	l, _ := testLayout()
	var buf bytes.Buffer
	if err := TerrainHTML(&buf, l, nil, "x"); err == nil {
		t.Fatal("want error for missing colors")
	}
}

func TestAnnotatedBoundarySVG(t *testing.T) {
	l, st := testLayout()
	var buf bytes.Buffer
	if err := AnnotatedBoundarySVG(&buf, l, nodeColors(st), 400, 3, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasSuffix(out, "</svg>\n") {
		t.Fatal("annotated SVG not closed")
	}
	if strings.Count(out, "</svg>") != 1 {
		t.Fatal("annotated SVG has duplicate closing tags")
	}
	for _, want := range []string{">K1<", ">K2<", "items</text>"} {
		if !strings.Contains(out, want) {
			t.Fatalf("annotated SVG missing %q", want)
		}
	}
	// topK=1 labels exactly one peak.
	buf.Reset()
	if err := AnnotatedBoundarySVG(&buf, l, nodeColors(st), 400, 3, 1); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), ">K2<") {
		t.Fatal("topK=1 labeled a second peak")
	}
}
