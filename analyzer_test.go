package scalarfield

import (
	"reflect"
	"runtime"
	"testing"
)

// TestAnalyzerMatchesAnalyze reuses one Analyzer across every
// registered measure, twice over; each result must match the one-shot
// Analyze exactly — pooling may never change output.
func TestAnalyzerMatchesAnalyze(t *testing.T) {
	g := demoGraph()
	a := NewAnalyzer()
	for round := 0; round < 2; round++ {
		for _, name := range Measures() {
			want, err := Analyze(g, name, AnalyzeOptions{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := a.Analyze(g, name, AnalyzeOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want.Tree.Parent, got.Tree.Parent) ||
				!reflect.DeepEqual(want.Tree.Scalar, got.Tree.Scalar) ||
				!reflect.DeepEqual(want.Tree.Members, got.Tree.Members) ||
				!reflect.DeepEqual(want.Tree.NodeOf, got.Tree.NodeOf) {
				t.Fatalf("round %d measure %q: pooled Analyzer diverges from Analyze", round, name)
			}
		}
	}
}

// TestAnalyzerResultsSurviveReuse pins the ownership contract: a
// Terrain from one Analyze call must stay intact after the pool is
// reused for another.
func TestAnalyzerResultsSurviveReuse(t *testing.T) {
	g := demoGraph()
	a := NewAnalyzer()
	first, err := a.Analyze(g, "kcore", AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	parent := append([]int32(nil), first.Tree.Parent...)
	scalar := append([]float64(nil), first.Tree.Scalar...)

	if _, err := a.Analyze(g, "degree", AnalyzeOptions{}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parent, first.Tree.Parent) || !reflect.DeepEqual(scalar, first.Tree.Scalar) {
		t.Fatal("earlier Terrain corrupted by Analyzer reuse")
	}
}

// TestAnalyzeAllSharedDistanceTraversal pins the multi-field fast
// path: a closeness-height, harmonic-color analysis computes both
// fields from one MS-BFS traversal, and its fields (and the fields of
// the swapped pairing) are bit-identical to the separately computed
// registry measures — so snapshot consumers cannot tell which path
// produced them.
func TestAnalyzeAllSharedDistanceTraversal(t *testing.T) {
	g := demoGraph()
	a := NewAnalyzer()
	for _, pair := range [][2]string{{"closeness", "harmonic"}, {"harmonic", "closeness"}} {
		res, err := a.AnalyzeAll(g, pair[0], AnalyzeOptions{ColorBy: pair[1]})
		if err != nil {
			t.Fatal(err)
		}
		wantHeight, _, err := MeasureValues(g, pair[0], false)
		if err != nil {
			t.Fatal(err)
		}
		wantColor, _, err := MeasureValues(g, pair[1], false)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Values, wantHeight) {
			t.Fatalf("%s/%s: shared-pass height field diverges from the registry measure", pair[0], pair[1])
		}
		if !reflect.DeepEqual(res.ColorValues, wantColor) {
			t.Fatalf("%s/%s: shared-pass color field diverges from the registry measure", pair[0], pair[1])
		}
	}
	// The fast path must not change the non-distance pairings either.
	res, err := a.AnalyzeAll(g, "kcore", AnalyzeOptions{ColorBy: "closeness"})
	if err != nil {
		t.Fatal(err)
	}
	if res.ColorValues == nil || res.Values == nil {
		t.Fatal("mixed pairing lost a field")
	}
}

// mallocsOf counts heap allocations performed by fn on this goroutine.
func mallocsOf(fn func()) uint64 {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	fn()
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

// TestAnalyzerAllocatesLessThanAnalyze is the allocation-regression
// guard on the pooled public API: a warm Analyzer run must allocate
// strictly less than the one-shot Analyze on the same request, since
// the sweep order, union-find state, and raw tree arrays come from the
// pool instead of the heap.
func TestAnalyzerAllocatesLessThanAnalyze(t *testing.T) {
	g := demoGraph()
	a := NewAnalyzer()
	if _, err := a.Analyze(g, "kcore", AnalyzeOptions{}); err != nil {
		t.Fatal(err) // warm up the pool
	}

	var fresh, pooled uint64
	// Minimum over a few runs damps GC and timer noise.
	for i := 0; i < 3; i++ {
		f := mallocsOf(func() { Analyze(g, "kcore", AnalyzeOptions{}) })
		p := mallocsOf(func() { a.Analyze(g, "kcore", AnalyzeOptions{}) })
		if i == 0 || f < fresh {
			fresh = f
		}
		if i == 0 || p < pooled {
			pooled = p
		}
	}
	if pooled >= fresh {
		t.Fatalf("warm Analyzer allocates %d objects, one-shot Analyze %d; pooling buys nothing", pooled, fresh)
	}
}
